//===- transform/Fusion.cpp - Cross-statement elementwise fusion -----------===//
//
// Part of the Fortran-90-Y reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Eliminates single-use array temporaries by folding each producer MOVE's
/// RHS into its unique consumer, within a block of sequential actions:
///
///     t    = a + b                MOVE(u, c + (a + b) * d)
///     u    = c + t * d      ==>   (t's store, load, and declaration gone)
///
/// Lowering materializes a field for every named temporary the programmer
/// (or a front-end rewrite) introduces, so compound computations walk the
/// subgrid once per statement and round-trip every intermediate through PE
/// memory. After fusion the back end compiles the whole producer chain as
/// one PEAC routine: one sweep, intermediates held in PE registers, and the
/// cost model stops charging the temporary's loads, stores, and allocation.
///
/// Legality (checked with name-level Effects):
///  - the producer is a single-clause, unguarded computation MOVE whose
///    destination is a whole-field (everywhere) AVAR;
///  - that temporary is declared once, written once, and read exactly once
///    in the entire program — multi-use temporaries never fuse;
///  - the unique read is a bare everywhere AVAR in a consumer clause's
///    source (not in a guard, a subscript, or a communication/reduction
///    call: cshift-fed operands block fusion);
///  - producer and consumer compute over the same domain (same shape, and
///    the consumer's mask only restricts the store of the fused value);
///  - no action between the two writes anything the producer's RHS reads
///    (and nothing can touch the temporary in between, by the use counts).
///
/// Producers and consumers arising from different source statements sit in
/// sibling WITH_DECL scopes after extract-comm; the pass splices those
/// move-only scopes into one flattened action list (names are unique after
/// lowering) so chains fuse across statement boundaries. When nothing in a
/// block fuses, the block is left structurally unchanged.
///
//===----------------------------------------------------------------------===//

#include "nir/Shape.h"
#include "nir/TypeInfer.h"
#include "transform/Effects.h"
#include "transform/Phases.h"
#include "transform/Transforms.h"

#include <map>
#include <set>
#include <string>
#include <vector>

using namespace f90y;
using namespace f90y::transform;
namespace N = f90y::nir;

namespace {

/// Occurrence counts (with multiplicity) of every variable name in the
/// program. Fusion demands exactly one declaration, one write, and one
/// read of a temporary; shadowed or re-declared names never qualify.
struct UseCounts {
  std::map<std::string, unsigned> Reads;
  std::map<std::string, unsigned> Writes;
  std::map<std::string, unsigned> Decls;

  unsigned reads(const std::string &Id) const { return at(Reads, Id); }
  unsigned writes(const std::string &Id) const { return at(Writes, Id); }
  unsigned decls(const std::string &Id) const { return at(Decls, Id); }

private:
  static unsigned at(const std::map<std::string, unsigned> &M,
                     const std::string &Id) {
    auto It = M.find(Id);
    return It == M.end() ? 0 : It->second;
  }
};

void countValueReads(const N::Value *V, UseCounts &C) {
  if (!V)
    return;
  switch (V->getKind()) {
  case N::Value::Kind::Binary: {
    const auto *B = cast<N::BinaryValue>(V);
    countValueReads(B->getLHS(), C);
    countValueReads(B->getRHS(), C);
    return;
  }
  case N::Value::Kind::Unary:
    countValueReads(cast<N::UnaryValue>(V)->getOperand(), C);
    return;
  case N::Value::Kind::SVar:
    ++C.Reads[cast<N::SVarValue>(V)->getId()];
    return;
  case N::Value::Kind::ScalarConst:
  case N::Value::Kind::StrConst:
  case N::Value::Kind::LocalCoord:
    return;
  case N::Value::Kind::FcnCall:
    for (const N::Value *A : cast<N::FcnCallValue>(V)->getArgs())
      countValueReads(A, C);
    return;
  case N::Value::Kind::AVar: {
    const auto *AV = cast<N::AVarValue>(V);
    ++C.Reads[AV->getId()];
    if (const auto *Sub = dyn_cast<N::SubscriptAction>(AV->getAction()))
      for (const N::Value *Idx : Sub->getIndices())
        countValueReads(Idx, C);
    return;
  }
  }
}

void countImp(const N::Imp *I, UseCounts &C) {
  if (!I)
    return;
  switch (I->getKind()) {
  case N::Imp::Kind::Program:
    countImp(cast<N::ProgramImp>(I)->getBody(), C);
    return;
  case N::Imp::Kind::Sequentially:
    for (const N::Imp *A : cast<N::SequentiallyImp>(I)->getActions())
      countImp(A, C);
    return;
  case N::Imp::Kind::Concurrently:
    for (const N::Imp *A : cast<N::ConcurrentlyImp>(I)->getActions())
      countImp(A, C);
    return;
  case N::Imp::Kind::Move:
    for (const N::MoveClause &Cl : cast<N::MoveImp>(I)->getClauses()) {
      countValueReads(Cl.Guard, C);
      countValueReads(Cl.Src, C);
      if (const auto *AV = dyn_cast<N::AVarValue>(Cl.Dst)) {
        ++C.Writes[AV->getId()];
        if (const auto *Sub = dyn_cast<N::SubscriptAction>(AV->getAction()))
          for (const N::Value *Idx : Sub->getIndices())
            countValueReads(Idx, C);
      } else if (const auto *SV = dyn_cast<N::SVarValue>(Cl.Dst)) {
        ++C.Writes[SV->getId()];
      }
    }
    return;
  case N::Imp::Kind::IfThenElse: {
    const auto *If = cast<N::IfThenElseImp>(I);
    countValueReads(If->getCond(), C);
    countImp(If->getThen(), C);
    countImp(If->getElse(), C);
    return;
  }
  case N::Imp::Kind::While: {
    const auto *W = cast<N::WhileImp>(I);
    countValueReads(W->getCond(), C);
    countImp(W->getBody(), C);
    return;
  }
  case N::Imp::Kind::WithDecl: {
    const auto *WD = cast<N::WithDeclImp>(I);
    N::forEachBinding(WD->getDecl(), [&](const std::string &Id, const N::Type *,
                                         const N::Value *Init) {
      ++C.Decls[Id];
      if (Init) {
        ++C.Writes[Id];
        countValueReads(Init, C);
      }
    });
    countImp(WD->getBody(), C);
    return;
  }
  case N::Imp::Kind::WithDomain:
    countImp(cast<N::WithDomainImp>(I)->getBody(), C);
    return;
  case N::Imp::Kind::Skip:
    return;
  case N::Imp::Kind::Do:
    countImp(cast<N::DoImp>(I)->getBody(), C);
    return;
  case N::Imp::Kind::Call:
    // COPY_OUT convention: host calls may read and write their arguments.
    for (const N::Value *A : cast<N::CallImp>(I)->getArgs()) {
      countValueReads(A, C);
      if (const auto *AV = dyn_cast<N::AVarValue>(A))
        ++C.Writes[AV->getId()];
      else if (const auto *SV = dyn_cast<N::SVarValue>(A))
        ++C.Writes[SV->getId()];
    }
    return;
  }
}

bool isTrueGuard(const N::Value *G) {
  if (!G)
    return true;
  const auto *SC = dyn_cast<N::ScalarConstValue>(G);
  return SC && SC->isBool() && SC->getBool();
}

/// Classifies the lone read of \p Temp inside a consumer source tree.
/// Fusible only when the read is a bare everywhere AVAR and not an
/// argument of any FCNCALL except the elemental 'merge' (communication
/// and reduction intrinsics gather shifted/partial values, so folding a
/// producer under them would change which elements are combined).
enum class ReadSite { Absent, Fusible, Blocked };

ReadSite locateRead(const N::Value *V, const std::string &Temp,
                    bool UnderCall) {
  if (!V)
    return ReadSite::Absent;
  switch (V->getKind()) {
  case N::Value::Kind::Binary: {
    const auto *B = cast<N::BinaryValue>(V);
    ReadSite L = locateRead(B->getLHS(), Temp, UnderCall);
    if (L != ReadSite::Absent)
      return L;
    return locateRead(B->getRHS(), Temp, UnderCall);
  }
  case N::Value::Kind::Unary:
    return locateRead(cast<N::UnaryValue>(V)->getOperand(), Temp, UnderCall);
  case N::Value::Kind::SVar:
  case N::Value::Kind::ScalarConst:
  case N::Value::Kind::StrConst:
  case N::Value::Kind::LocalCoord:
    return ReadSite::Absent;
  case N::Value::Kind::FcnCall: {
    const auto *F = cast<N::FcnCallValue>(V);
    bool Nested = UnderCall || F->getCallee() != "merge";
    for (const N::Value *A : F->getArgs()) {
      ReadSite S = locateRead(A, Temp, Nested);
      if (S != ReadSite::Absent)
        return S;
    }
    return ReadSite::Absent;
  }
  case N::Value::Kind::AVar: {
    const auto *AV = cast<N::AVarValue>(V);
    if (const auto *Sub = dyn_cast<N::SubscriptAction>(AV->getAction()))
      for (const N::Value *Idx : Sub->getIndices()) {
        ReadSite S = locateRead(Idx, Temp, UnderCall);
        if (S != ReadSite::Absent)
          return ReadSite::Blocked;
      }
    if (AV->getId() != Temp)
      return ReadSite::Absent;
    if (UnderCall || !isa<N::EverywhereAction>(AV->getAction()))
      return ReadSite::Blocked;
    return ReadSite::Fusible;
  }
  }
  return ReadSite::Absent;
}

class FusionPass {
public:
  FusionPass(N::NIRContext &Ctx, const UseCounts &Counts)
      : Ctx(Ctx), Counts(Counts) {}

  const N::Imp *run(const N::Imp *Root) { return rewriteImp(Root); }

  const std::set<std::string> &eliminated() const { return Eliminated; }
  const FusionStats &stats() const { return Stats; }

private:
  N::NIRContext &Ctx;
  const UseCounts &Counts;
  N::ElemTypeInference Types;
  N::DomainEnv Domains;
  std::set<std::string> Eliminated;
  FusionStats Stats;

  struct Item {
    const N::Imp *Action;
    Effects Eff;
    bool IsComp = false;
    bool Absorbed = false; ///< Already counted toward MovesFused.
    std::string Domain;
  };

  Item makeItem(const N::Imp *A) {
    Item It;
    It.Action = A;
    It.Eff = effectsOf(A);
    if (const auto *M = dyn_cast<N::MoveImp>(A)) {
      if (classifyAction(M) == PhaseKind::Computation) {
        It.Domain = computationDomainOf(M, Types);
        It.IsComp = !It.Domain.empty();
      }
    }
    return It;
  }

  /// True for the WITH_DECL wrappers extract-comm builds around a single
  /// statement: plain (uninitialized) declarations over a body that is a
  /// MOVE or a sequence of MOVEs. Only those are spliced; initializers
  /// must not be reordered and nested control stays opaque.
  static bool spliceable(const N::WithDeclImp *WD) {
    bool Plain = true;
    N::forEachBinding(WD->getDecl(), [&](const std::string &, const N::Type *,
                                         const N::Value *Init) {
      if (Init)
        Plain = false;
    });
    if (!Plain)
      return false;
    if (isa<N::MoveImp>(WD->getBody()))
      return true;
    const auto *Seq = dyn_cast<N::SequentiallyImp>(WD->getBody());
    if (!Seq)
      return false;
    for (const N::Imp *A : Seq->getActions())
      if (!isa<N::MoveImp>(A))
        return false;
    return true;
  }

  /// Replaces the unique AVAR(Temp, everywhere) read in \p V with \p Repl,
  /// sharing every unchanged subtree.
  const N::Value *substitute(const N::Value *V, const std::string &Temp,
                             const N::Value *Repl) {
    switch (V->getKind()) {
    case N::Value::Kind::Binary: {
      const auto *B = cast<N::BinaryValue>(V);
      const N::Value *L = substitute(B->getLHS(), Temp, Repl);
      const N::Value *R = substitute(B->getRHS(), Temp, Repl);
      if (L == B->getLHS() && R == B->getRHS())
        return V;
      return Ctx.getBinary(B->getOp(), L, R);
    }
    case N::Value::Kind::Unary: {
      const auto *U = cast<N::UnaryValue>(V);
      const N::Value *Op = substitute(U->getOperand(), Temp, Repl);
      return Op == U->getOperand() ? V : Ctx.getUnary(U->getOp(), Op);
    }
    case N::Value::Kind::FcnCall: {
      const auto *F = cast<N::FcnCallValue>(V);
      std::vector<const N::Value *> Args;
      bool Changed = false;
      for (const N::Value *A : F->getArgs()) {
        const N::Value *NA = substitute(A, Temp, Repl);
        Changed |= NA != A;
        Args.push_back(NA);
      }
      return Changed ? Ctx.getFcnCall(F->getCallee(), Args) : V;
    }
    case N::Value::Kind::AVar: {
      const auto *AV = cast<N::AVarValue>(V);
      if (AV->getId() == Temp && isa<N::EverywhereAction>(AV->getAction()))
        return Repl;
      return V;
    }
    default:
      return V;
    }
  }

  /// Static memory-traffic estimate for one eliminated temporary: a full
  /// store of the field plus a full reload (elements x element size x 2).
  uint64_t bytesFor(const std::string &Temp) const {
    const auto *FT = dyn_cast_or_null<N::DFieldType>(Types.lookup(Temp));
    if (!FT)
      return 0;
    int64_t Elems = N::shapeNumElements(FT->getShape(), Domains);
    if (Elems < 0)
      return 0;
    const N::Type *Elem = FT->getUltimateElementType();
    uint64_t Bytes = Elem->getKind() == N::Type::Kind::Float64 ? 8 : 4;
    return 2 * Bytes * static_cast<uint64_t>(Elems);
  }

  /// Attempts to fold the producer at \p I into its unique consumer later
  /// in \p Items. On success the producer is erased (the caller must not
  /// advance its index) and true is returned.
  bool tryFuseFrom(size_t I, std::vector<Item> &Items) {
    if (!Items[I].IsComp)
      return false;
    const auto *M = cast<N::MoveImp>(Items[I].Action);
    if (M->getClauses().size() != 1)
      return false;
    const N::MoveClause &P = M->getClauses()[0];
    if (!isTrueGuard(P.Guard))
      return false;
    const auto *Dst = dyn_cast<N::AVarValue>(P.Dst);
    if (!Dst || !isa<N::EverywhereAction>(Dst->getAction()))
      return false;
    const std::string &Temp = Dst->getId();
    if (Eliminated.count(Temp))
      return false;
    if (Counts.decls(Temp) != 1 || Counts.writes(Temp) != 1 ||
        Counts.reads(Temp) != 1)
      return false;

    std::set<std::string> SrcReads;
    collectReads(P.Src, SrcReads);

    for (size_t J = I + 1; J < Items.size(); ++J) {
      Item &Cand = Items[J];
      if (Cand.Eff.Reads.count(Temp)) {
        // The unique read. Fusible only in a same-domain computation MOVE.
        if (!Cand.IsComp || Cand.Domain != Items[I].Domain)
          return false;
        const auto *CM = cast<N::MoveImp>(Cand.Action);
        int ClauseIdx = -1;
        for (size_t K = 0; K < CM->getClauses().size(); ++K) {
          const N::MoveClause &C = CM->getClauses()[K];
          if (locateRead(C.Guard, Temp, /*UnderCall=*/true) !=
              ReadSite::Absent)
            return false; // read in a mask: evaluation must stay put
          ReadSite S = locateRead(C.Src, Temp, /*UnderCall=*/false);
          if (S == ReadSite::Blocked)
            return false;
          if (S == ReadSite::Fusible)
            ClauseIdx = static_cast<int>(K);
        }
        if (ClauseIdx < 0)
          return false;
        // Clauses apply in order and sources see the pre-state of their
        // clause, so clauses ahead of the read must not write anything
        // the producer's RHS reads.
        for (int K = 0; K < ClauseIdx; ++K)
          if (const auto *AV =
                  dyn_cast<N::AVarValue>(CM->getClauses()[K].Dst)) {
            if (SrcReads.count(AV->getId()))
              return false;
          } else if (const auto *SV =
                         dyn_cast<N::SVarValue>(CM->getClauses()[K].Dst)) {
            if (SrcReads.count(SV->getId()))
              return false;
          }

        std::vector<N::MoveClause> Clauses = CM->getClauses();
        Clauses[static_cast<size_t>(ClauseIdx)].Src = substitute(
            Clauses[static_cast<size_t>(ClauseIdx)].Src, Temp, P.Src);
        bool WasAbsorbed = Cand.Absorbed;
        Item Fused = makeItem(Ctx.getMove(Clauses));
        Fused.Absorbed = true;
        if (!WasAbsorbed)
          ++Stats.MovesFused;
        ++Stats.TempsEliminated;
        Stats.BytesSaved += bytesFor(Temp);
        Eliminated.insert(Temp);
        // Placement: prefer the producer's slot. Fusing in place at the
        // consumer would sink the producer's (comm-independent) work past
        // whatever sits between — typically a computation that depends on
        // an in-flight exchange — and rob the split-phase executor of the
        // independent work it hides communication under. Hoisting is
        // legal exactly when everything in between is independent of the
        // fused MOVE; otherwise fuse where the consumer stands.
        bool Hoist = true;
        for (size_t K = I + 1; K < J && Hoist; ++K)
          Hoist = independent(Items[K].Eff, Fused.Eff);
        if (Hoist) {
          Items[I] = Fused;
          Items.erase(Items.begin() + static_cast<long>(J));
        } else {
          Items[J] = Fused;
          Items.erase(Items.begin() + static_cast<long>(I));
        }
        return true;
      }
      // No read of the temporary here: the producer's evaluation is being
      // delayed past this action, so nothing in it may overwrite an
      // operand of the producer's RHS.
      for (const std::string &R : SrcReads)
        if (Cand.Eff.Writes.count(R))
          return false;
    }
    return false;
  }

  const N::Imp *rewriteSequentially(const N::SequentiallyImp *S) {
    std::vector<const N::Imp *> Plain;
    Plain.reserve(S->getActions().size());
    for (const N::Imp *A : S->getActions())
      Plain.push_back(rewriteImp(A));

    // Flatten: splice the move-only WITH_DECL wrappers extract-comm put
    // around single statements, so producers and consumers from different
    // statements become siblings of one list.
    std::vector<Item> Items;
    std::vector<const N::Decl *> Spliced;
    for (const N::Imp *A : Plain) {
      const auto *WD = dyn_cast<N::WithDeclImp>(A);
      if (WD && spliceable(WD)) {
        Spliced.push_back(WD->getDecl());
        if (const auto *Seq = dyn_cast<N::SequentiallyImp>(WD->getBody()))
          for (const N::Imp *Inner : Seq->getActions())
            Items.push_back(makeItem(Inner));
        else
          Items.push_back(makeItem(WD->getBody()));
      } else {
        Items.push_back(makeItem(A));
      }
    }

    bool Changed = false;
    size_t I = 0;
    while (I < Items.size()) {
      if (tryFuseFrom(I, Items))
        Changed = true;
      else
        ++I;
    }

    // Nothing fused: keep the block structurally unchanged (the splice
    // above was only a view for the analysis).
    if (!Changed)
      return Ctx.getSequentially(Plain);

    std::vector<const N::Imp *> Out;
    Out.reserve(Items.size());
    for (const Item &It : Items)
      Out.push_back(It.Action);
    const N::Imp *Body =
        Out.size() == 1 ? Out[0] : Ctx.getSequentially(Out);
    if (Spliced.empty())
      return Body;
    const N::Decl *D = Spliced.size() == 1
                           ? Spliced[0]
                           : Ctx.getDeclSet(Spliced);
    return Ctx.getWithDecl(D, Body);
  }

  const N::Imp *rewriteImp(const N::Imp *I) {
    switch (I->getKind()) {
    case N::Imp::Kind::Program: {
      const auto *P = cast<N::ProgramImp>(I);
      return Ctx.getProgram(P->getName(), rewriteImp(P->getBody()));
    }
    case N::Imp::Kind::Sequentially:
      return rewriteSequentially(cast<N::SequentiallyImp>(I));
    case N::Imp::Kind::Concurrently: {
      std::vector<const N::Imp *> Actions;
      for (const N::Imp *A : cast<N::ConcurrentlyImp>(I)->getActions())
        Actions.push_back(rewriteImp(A));
      return Ctx.getConcurrently(Actions);
    }
    case N::Imp::Kind::Move:
    case N::Imp::Kind::Skip:
    case N::Imp::Kind::Call:
      return I;
    case N::Imp::Kind::IfThenElse: {
      const auto *If = cast<N::IfThenElseImp>(I);
      return Ctx.getIfThenElse(If->getCond(), rewriteImp(If->getThen()),
                               rewriteImp(If->getElse()));
    }
    case N::Imp::Kind::While: {
      const auto *W = cast<N::WhileImp>(I);
      return Ctx.getWhile(W->getCond(), rewriteImp(W->getBody()));
    }
    case N::Imp::Kind::WithDecl: {
      const auto *WD = cast<N::WithDeclImp>(I);
      Types.addDecl(WD->getDecl());
      return Ctx.getWithDecl(WD->getDecl(), rewriteImp(WD->getBody()));
    }
    case N::Imp::Kind::WithDomain: {
      const auto *WD = cast<N::WithDomainImp>(I);
      const N::Shape *Old = Domains.bind(WD->getName(), WD->getShape());
      const N::Imp *Body = rewriteImp(WD->getBody());
      Domains.restore(WD->getName(), Old);
      return Ctx.getWithDomain(WD->getName(), WD->getShape(), Body);
    }
    case N::Imp::Kind::Do: {
      const auto *D = cast<N::DoImp>(I);
      return Ctx.getDo(D->getIterSpace(), rewriteImp(D->getBody()));
    }
    }
    return I;
  }
};

/// Deletes the declarations of eliminated temporaries (their one store and
/// one load are gone, so the binding is dead and its allocation with it).
class DeclPruner {
public:
  DeclPruner(N::NIRContext &Ctx, const std::set<std::string> &Dead)
      : Ctx(Ctx), Dead(Dead) {}

  const N::Imp *run(const N::Imp *I) { return rewriteImp(I); }

private:
  N::NIRContext &Ctx;
  const std::set<std::string> &Dead;

  /// Returns \p D with dead bindings removed, or null when none survive.
  const N::Decl *filterDecl(const N::Decl *D, bool &Changed) {
    switch (D->getKind()) {
    case N::Decl::Kind::Simple:
      if (Dead.count(cast<N::SimpleDecl>(D)->getId())) {
        Changed = true;
        return nullptr;
      }
      return D;
    case N::Decl::Kind::Initialized:
      if (Dead.count(cast<N::InitializedDecl>(D)->getId())) {
        Changed = true;
        return nullptr;
      }
      return D;
    case N::Decl::Kind::Set: {
      std::vector<const N::Decl *> Kept;
      bool Sub = false;
      for (const N::Decl *Child : cast<N::DeclSet>(D)->getDecls())
        if (const N::Decl *F = filterDecl(Child, Sub))
          Kept.push_back(F);
      if (!Sub)
        return D;
      Changed = true;
      if (Kept.empty())
        return nullptr;
      return Kept.size() == 1 ? Kept[0] : Ctx.getDeclSet(Kept);
    }
    }
    return D;
  }

  const N::Imp *rewriteImp(const N::Imp *I) {
    switch (I->getKind()) {
    case N::Imp::Kind::Program: {
      const auto *P = cast<N::ProgramImp>(I);
      return Ctx.getProgram(P->getName(), rewriteImp(P->getBody()));
    }
    case N::Imp::Kind::Sequentially: {
      std::vector<const N::Imp *> Actions;
      for (const N::Imp *A : cast<N::SequentiallyImp>(I)->getActions())
        Actions.push_back(rewriteImp(A));
      return Ctx.getSequentially(Actions);
    }
    case N::Imp::Kind::Concurrently: {
      std::vector<const N::Imp *> Actions;
      for (const N::Imp *A : cast<N::ConcurrentlyImp>(I)->getActions())
        Actions.push_back(rewriteImp(A));
      return Ctx.getConcurrently(Actions);
    }
    case N::Imp::Kind::Move:
    case N::Imp::Kind::Skip:
    case N::Imp::Kind::Call:
      return I;
    case N::Imp::Kind::IfThenElse: {
      const auto *If = cast<N::IfThenElseImp>(I);
      return Ctx.getIfThenElse(If->getCond(), rewriteImp(If->getThen()),
                               rewriteImp(If->getElse()));
    }
    case N::Imp::Kind::While: {
      const auto *W = cast<N::WhileImp>(I);
      return Ctx.getWhile(W->getCond(), rewriteImp(W->getBody()));
    }
    case N::Imp::Kind::WithDecl: {
      const auto *WD = cast<N::WithDeclImp>(I);
      bool Changed = false;
      const N::Decl *D = filterDecl(WD->getDecl(), Changed);
      const N::Imp *Body = rewriteImp(WD->getBody());
      if (!D)
        return Body;
      return Ctx.getWithDecl(D, Body);
    }
    case N::Imp::Kind::WithDomain: {
      const auto *WD = cast<N::WithDomainImp>(I);
      return Ctx.getWithDomain(WD->getName(), WD->getShape(),
                               rewriteImp(WD->getBody()));
    }
    case N::Imp::Kind::Do: {
      const auto *D = cast<N::DoImp>(I);
      return Ctx.getDo(D->getIterSpace(), rewriteImp(D->getBody()));
    }
    }
    return I;
  }
};

} // namespace

const N::Imp *transform::fuseElementwise(const N::Imp *Root,
                                         N::NIRContext &Ctx,
                                         DiagnosticEngine &,
                                         FusionStats *Stats) {
  UseCounts Counts;
  countImp(Root, Counts);
  FusionPass Pass(Ctx, Counts);
  const N::Imp *Result = Pass.run(Root);
  if (!Pass.eliminated().empty())
    Result = DeclPruner(Ctx, Pass.eliminated()).run(Result);
  if (Stats)
    *Stats = Pass.stats();
  return Result;
}
