//===- transform/MaskSections.cpp - Pad sections to masked moves ------------===//
//
// Part of the Fortran-90-Y reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Paper Figure 10: "By generating mask code, the compiler pads
/// computations over array subsections to full-array operations,
/// increasing the pool of sibling computations which could be implemented
/// in the same computation block."
///
/// A sectioned MOVE clause is *aligned* when every sectioned operand uses
/// the identical triplets as the destination; the element correspondence
/// is then coordinate-wise, so the clause can be rewritten over the full
/// shape under a coordinate mask built from local_under values:
///
///   b(1:32:2,:) = a(1:32:2,:)
///     ==>  MOVE[(mod(local_under(S,1) - 1, 2) == 0,
///                (AVAR('a', everywhere), AVAR('b', everywhere)))]
///
/// Misaligned sections are left untouched; they are communication.
///
//===----------------------------------------------------------------------===//

#include "nir/TypeInfer.h"
#include "transform/Phases.h"
#include "transform/Transforms.h"

using namespace f90y;
using namespace f90y::transform;
namespace N = f90y::nir;

namespace {

class MaskSectionsPass {
public:
  MaskSectionsPass(N::NIRContext &Ctx) : Ctx(Ctx) {}

  const N::Imp *run(const N::Imp *Root) { return rewriteImp(Root); }

private:
  N::NIRContext &Ctx;
  N::ElemTypeInference Types;

  /// Collects the triplets of every sectioned AVAR in \p V into \p Out;
  /// returns false if two sectioned reads disagree.
  bool collectSectionReads(const N::Value *V,
                           const std::vector<N::SectionTriplet> *&Out) {
    switch (V->getKind()) {
    case N::Value::Kind::Binary: {
      const auto *B = cast<N::BinaryValue>(V);
      return collectSectionReads(B->getLHS(), Out) &&
             collectSectionReads(B->getRHS(), Out);
    }
    case N::Value::Kind::Unary:
      return collectSectionReads(cast<N::UnaryValue>(V)->getOperand(), Out);
    case N::Value::Kind::AVar: {
      const auto *AV = cast<N::AVarValue>(V);
      const auto *Sec = dyn_cast<N::SectionAction>(AV->getAction());
      if (!Sec)
        return true;
      if (!Out) {
        Out = &Sec->getTriplets();
        return true;
      }
      return *Out == Sec->getTriplets();
    }
    case N::Value::Kind::FcnCall: {
      for (const N::Value *A : cast<N::FcnCallValue>(V)->getArgs())
        if (!collectSectionReads(A, Out))
          return false;
      return true;
    }
    default:
      return true;
    }
  }

  /// Rewrites every sectioned AVAR whose triplets equal \p Triplets to an
  /// everywhere AVAR.
  const N::Value *sectionsToEverywhere(const N::Value *V) {
    switch (V->getKind()) {
    case N::Value::Kind::Binary: {
      const auto *B = cast<N::BinaryValue>(V);
      return Ctx.getBinary(B->getOp(), sectionsToEverywhere(B->getLHS()),
                           sectionsToEverywhere(B->getRHS()));
    }
    case N::Value::Kind::Unary: {
      const auto *U = cast<N::UnaryValue>(V);
      return Ctx.getUnary(U->getOp(),
                          sectionsToEverywhere(U->getOperand()));
    }
    case N::Value::Kind::AVar: {
      const auto *AV = cast<N::AVarValue>(V);
      if (isa<N::SectionAction>(AV->getAction()))
        return Ctx.getAVar(AV->getId(), Ctx.getEverywhere());
      return V;
    }
    case N::Value::Kind::FcnCall: {
      const auto *F = cast<N::FcnCallValue>(V);
      std::vector<const N::Value *> Args;
      for (const N::Value *A : F->getArgs())
        Args.push_back(sectionsToEverywhere(A));
      return Ctx.getFcnCall(F->getCallee(), Args);
    }
    default:
      return V;
    }
  }

  /// Mask condition for one dimension's triplet over \p Domain.
  const N::Value *dimMask(const std::string &Domain, unsigned Dim,
                          const N::SectionTriplet &T) {
    if (T.All)
      return nullptr;
    const N::Value *Coord = Ctx.getLocalCoord(Domain, Dim);
    const N::Value *Cond = nullptr;
    auto AndIn = [&](const N::Value *C) {
      Cond = Cond ? Ctx.getBinary(N::BinaryOp::And, Cond, C) : C;
    };
    if (T.Stride > 0) {
      AndIn(Ctx.getBinary(N::BinaryOp::Ge, Coord, Ctx.getIntConst(T.Lo)));
      AndIn(Ctx.getBinary(N::BinaryOp::Le, Coord, Ctx.getIntConst(T.Hi)));
      if (T.Stride != 1)
        AndIn(Ctx.getBinary(
            N::BinaryOp::Eq,
            Ctx.getBinary(N::BinaryOp::Mod,
                          Ctx.getBinary(N::BinaryOp::Sub, Coord,
                                        Ctx.getIntConst(T.Lo)),
                          Ctx.getIntConst(T.Stride)),
            Ctx.getIntConst(0)));
    } else {
      AndIn(Ctx.getBinary(N::BinaryOp::Le, Coord, Ctx.getIntConst(T.Lo)));
      AndIn(Ctx.getBinary(N::BinaryOp::Ge, Coord, Ctx.getIntConst(T.Hi)));
      if (T.Stride != -1)
        AndIn(Ctx.getBinary(
            N::BinaryOp::Eq,
            Ctx.getBinary(N::BinaryOp::Mod,
                          Ctx.getBinary(N::BinaryOp::Sub,
                                        Ctx.getIntConst(T.Lo), Coord),
                          Ctx.getIntConst(-T.Stride)),
            Ctx.getIntConst(0)));
    }
    return Cond;
  }

  /// Attempts the aligned-section-to-mask rewrite on one clause. Returns
  /// true (and replaces \p C) on success.
  bool tryMaskClause(N::MoveClause &C) {
    const auto *DstAV = dyn_cast<N::AVarValue>(C.Dst);
    if (!DstAV)
      return false;
    const auto *DstSec = dyn_cast<N::SectionAction>(DstAV->getAction());
    if (!DstSec)
      return false;

    // Every sectioned read must agree with the destination triplets.
    const std::vector<N::SectionTriplet> *ReadTriplets = nullptr;
    if (!collectSectionReads(C.Src, ReadTriplets))
      return false;
    if (C.Guard && !collectSectionReads(C.Guard, ReadTriplets))
      return false;
    if (ReadTriplets && *ReadTriplets != DstSec->getTriplets())
      return false;
    // Everywhere reads cannot appear in a genuinely restricted statement
    // (shapecheck would have rejected them), so alignment is established.

    const auto *FT =
        dyn_cast_or_null<N::DFieldType>(Types.lookup(DstAV->getId()));
    if (!FT)
      return false;
    const auto *Ref = dyn_cast<N::DomainRefShape>(FT->getShape());
    if (!Ref)
      return false;
    const std::string &Domain = Ref->getName();

    const N::Value *Mask = nullptr;
    for (size_t D = 0; D < DstSec->getTriplets().size(); ++D) {
      const N::Value *M = dimMask(Domain, static_cast<unsigned>(D + 1),
                                  DstSec->getTriplets()[D]);
      if (!M)
        continue;
      Mask = Mask ? Ctx.getBinary(N::BinaryOp::And, Mask, M) : M;
    }

    const N::Value *Guard = C.Guard;
    bool GuardIsTrue =
        Guard && isa<N::ScalarConstValue>(Guard) &&
        cast<N::ScalarConstValue>(Guard)->isBool() &&
        cast<N::ScalarConstValue>(Guard)->getBool();
    if (Mask) {
      if (!Guard || GuardIsTrue)
        Guard = Mask;
      else
        Guard = Ctx.getBinary(N::BinaryOp::And, Guard, Mask);
    }

    C.Guard = Guard ? Guard : Ctx.getTrue();
    C.Src = sectionsToEverywhere(C.Src);
    C.Dst = Ctx.getAVar(DstAV->getId(), Ctx.getEverywhere());
    return true;
  }

  const N::Imp *rewriteImp(const N::Imp *I) {
    switch (I->getKind()) {
    case N::Imp::Kind::Program: {
      const auto *P = cast<N::ProgramImp>(I);
      return Ctx.getProgram(P->getName(), rewriteImp(P->getBody()));
    }
    case N::Imp::Kind::Sequentially: {
      std::vector<const N::Imp *> Actions;
      for (const N::Imp *A : cast<N::SequentiallyImp>(I)->getActions())
        Actions.push_back(rewriteImp(A));
      return Ctx.getSequentially(Actions);
    }
    case N::Imp::Kind::Concurrently: {
      std::vector<const N::Imp *> Actions;
      for (const N::Imp *A : cast<N::ConcurrentlyImp>(I)->getActions())
        Actions.push_back(rewriteImp(A));
      return Ctx.getConcurrently(Actions);
    }
    case N::Imp::Kind::Move: {
      std::vector<N::MoveClause> Clauses =
          cast<N::MoveImp>(I)->getClauses();
      bool Changed = false;
      for (N::MoveClause &C : Clauses)
        Changed |= tryMaskClause(C);
      return Changed ? Ctx.getMove(Clauses) : I;
    }
    case N::Imp::Kind::IfThenElse: {
      const auto *If = cast<N::IfThenElseImp>(I);
      return Ctx.getIfThenElse(If->getCond(), rewriteImp(If->getThen()),
                               rewriteImp(If->getElse()));
    }
    case N::Imp::Kind::While: {
      const auto *W = cast<N::WhileImp>(I);
      return Ctx.getWhile(W->getCond(), rewriteImp(W->getBody()));
    }
    case N::Imp::Kind::WithDecl: {
      const auto *WD = cast<N::WithDeclImp>(I);
      Types.addDecl(WD->getDecl());
      return Ctx.getWithDecl(WD->getDecl(), rewriteImp(WD->getBody()));
    }
    case N::Imp::Kind::WithDomain: {
      const auto *WD = cast<N::WithDomainImp>(I);
      return Ctx.getWithDomain(WD->getName(), WD->getShape(),
                               rewriteImp(WD->getBody()));
    }
    case N::Imp::Kind::Skip:
    case N::Imp::Kind::Call:
      return I;
    case N::Imp::Kind::Do: {
      const auto *D = cast<N::DoImp>(I);
      return Ctx.getDo(D->getIterSpace(), rewriteImp(D->getBody()));
    }
    }
    return I;
  }
};

} // namespace

const N::Imp *transform::maskSections(const N::Imp *Root, N::NIRContext &Ctx,
                                      DiagnosticEngine &) {
  return MaskSectionsPass(Ctx).run(Root);
}
