//===- transform/Phases.cpp - Execution-phase classification ----------------===//
//
// Part of the Fortran-90-Y reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "transform/Phases.h"

#include "lower/Lowering.h"

using namespace f90y;
using namespace f90y::transform;
namespace N = f90y::nir;

bool transform::containsCommCall(const N::Value *V) {
  switch (V->getKind()) {
  case N::Value::Kind::Binary: {
    const auto *B = cast<N::BinaryValue>(V);
    return containsCommCall(B->getLHS()) || containsCommCall(B->getRHS());
  }
  case N::Value::Kind::Unary:
    return containsCommCall(cast<N::UnaryValue>(V)->getOperand());
  case N::Value::Kind::FcnCall: {
    const auto *F = cast<N::FcnCallValue>(V);
    if (lower::isCommIntrinsic(F->getCallee()) ||
        lower::isReductionIntrinsic(F->getCallee()))
      return true;
    for (const N::Value *A : F->getArgs())
      if (containsCommCall(A))
        return true;
    return false;
  }
  default:
    return false;
  }
}

bool transform::containsSection(const N::Value *V) {
  switch (V->getKind()) {
  case N::Value::Kind::Binary: {
    const auto *B = cast<N::BinaryValue>(V);
    return containsSection(B->getLHS()) || containsSection(B->getRHS());
  }
  case N::Value::Kind::Unary:
    return containsSection(cast<N::UnaryValue>(V)->getOperand());
  case N::Value::Kind::AVar:
    return isa<N::SectionAction>(cast<N::AVarValue>(V)->getAction());
  case N::Value::Kind::FcnCall: {
    for (const N::Value *A : cast<N::FcnCallValue>(V)->getArgs())
      if (containsSection(A))
        return true;
    return false;
  }
  default:
    return false;
  }
}

PhaseKind transform::classifyAction(const N::Imp *I) {
  const auto *M = dyn_cast<N::MoveImp>(I);
  if (!M) {
    if (isa<N::CallImp>(I))
      return PhaseKind::HostScalar;
    return PhaseKind::Structured;
  }

  bool AllScalarDst = true, AnyComm = false, AnySection = false;
  for (const N::MoveClause &C : M->getClauses()) {
    if (containsCommCall(C.Src) || (C.Guard && containsCommCall(C.Guard)))
      AnyComm = true;
    if (containsSection(C.Src) || (C.Guard && containsSection(C.Guard)))
      AnySection = true;
    if (const auto *AV = dyn_cast<N::AVarValue>(C.Dst)) {
      if (isa<N::SubscriptAction>(AV->getAction()))
        continue; // Single-element stores are host (front-end) actions.
      AllScalarDst = false;
      if (isa<N::SectionAction>(AV->getAction()))
        AnySection = true;
    }
  }
  if (AnyComm || AnySection)
    return PhaseKind::Communication;
  if (AllScalarDst)
    return PhaseKind::HostScalar;
  return PhaseKind::Computation;
}

std::string
transform::computationDomainOf(const N::MoveImp *M,
                               const N::ElemTypeInference &Types) {
  for (const N::MoveClause &C : M->getClauses()) {
    const auto *AV = dyn_cast<N::AVarValue>(C.Dst);
    if (!AV)
      continue;
    const auto *FT = dyn_cast_or_null<N::DFieldType>(Types.lookup(AV->getId()));
    if (!FT)
      continue;
    if (const auto *Ref = dyn_cast<N::DomainRefShape>(FT->getShape()))
      return Ref->getName();
  }
  return "";
}
