//===- transform/Phases.h - Execution-phase classification --------*- C++ -*-===//
//
// Part of the Fortran-90-Y reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Classification of NIR actions into execution phases (paper Section 4.2):
/// each phase either carries out a single computational action over data
/// with a common shape and alignment, or expresses a single communication
/// of data from one shape/alignment to another. The CM2/NIR back end cuts
/// computation phases out as PEAC node procedures; communication and
/// scalar phases become host code.
///
//===----------------------------------------------------------------------===//

#ifndef F90Y_TRANSFORM_PHASES_H
#define F90Y_TRANSFORM_PHASES_H

#include "nir/Imperative.h"
#include "nir/TypeInfer.h"

#include <string>

namespace f90y {
namespace transform {

enum class PhaseKind {
  Computation,   ///< Grid-local parallel MOVE over one domain (PEAC-able).
  Communication, ///< Shift/router/reduction data motion (CM runtime).
  HostScalar,    ///< Scalar moves and control (front-end code).
  Structured     ///< Nested control (DO/IF/WHILE/decl scopes).
};

/// True when \p V contains a communication or reduction intrinsic call.
bool containsCommCall(const nir::Value *V);

/// True when \p V contains a section-restricted array reference.
bool containsSection(const nir::Value *V);

/// Classifies a single action appearing in a sequential composition.
PhaseKind classifyAction(const nir::Imp *I);

/// For a Computation-classified MOVE, the name of the domain the phase
/// computes over (the declared domain of the first destination array),
/// resolved through \p Types. Returns "" when unknown.
std::string computationDomainOf(const nir::MoveImp *M,
                                const nir::ElemTypeInference &Types);

} // namespace transform
} // namespace f90y

#endif // F90Y_TRANSFORM_PHASES_H
