//===- transform/Transforms.cpp - Pass pipeline and statistics --------------===//
//
// Part of the Fortran-90-Y reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "transform/Transforms.h"

#include "layout/Materialize.h"
#include "nir/Verifier.h"
#include "observe/Metrics.h"
#include "observe/Trace.h"

#include <functional>
#include <string>

using namespace f90y;
using namespace f90y::transform;
namespace N = f90y::nir;

/// Runs one pass under an optional wall span, recording the phase-count
/// deltas the pass produced as span args and per-pass gauges.
static const N::Imp *
runPass(const char *Name, const N::Imp *I, const TransformOptions &Opts,
        const std::function<const N::Imp *(const N::Imp *)> &Pass) {
  if (!Opts.Trace && !Opts.Metrics)
    return Pass(I);
  PhaseStats Before = countPhases(I);
  observe::WallSpan Span(Opts.Trace, Name, "pass");
  const N::Imp *Result = Pass(I);
  PhaseStats After = countPhases(Result);
  Span.addArg(observe::arg("comp_phases", uint64_t(After.ComputationPhases)));
  Span.addArg(observe::arg("comm_phases",
                           uint64_t(After.CommunicationPhases)));
  Span.addArg(observe::arg("move_clauses", uint64_t(After.MoveClauses)));
  if (Opts.Metrics) {
    std::string Prefix = std::string("pass.") + Name + ".";
    Opts.Metrics->gauge(Prefix + "comp_phases", After.ComputationPhases);
    Opts.Metrics->gauge(Prefix + "comm_phases", After.CommunicationPhases);
    Opts.Metrics->gauge(Prefix + "host_phases", After.HostScalarPhases);
    Opts.Metrics->gauge(Prefix + "move_clauses", After.MoveClauses);
    Opts.Metrics->gauge(Prefix + "move_clause_delta",
                        double(After.MoveClauses) - double(Before.MoveClauses));
  }
  return Result;
}

const N::ProgramImp *transform::optimize(const N::ProgramImp *Program,
                                         N::NIRContext &Ctx,
                                         DiagnosticEngine &Diags,
                                         const TransformOptions &Opts) {
  const N::Imp *I = Program;
  unsigned ErrorsBefore = Diags.errorCount();
  if (Opts.ExtractComm)
    I = runPass("extract-comm", I, Opts, [&](const N::Imp *In) {
      return extractComm(In, Ctx, Diags);
    });
  if (Opts.MaskSections)
    I = runPass("mask-sections", I, Opts, [&](const N::Imp *In) {
      return maskSections(In, Ctx, Diags);
    });
  if (Opts.Fusion) {
    FusionStats FS;
    I = runPass("fuse", I, Opts, [&](const N::Imp *In) {
      return fuseElementwise(In, Ctx, Diags, &FS);
    });
    if (Opts.Metrics) {
      Opts.Metrics->gauge("fuse.temps_eliminated", FS.TempsEliminated);
      Opts.Metrics->gauge("fuse.moves_fused", FS.MovesFused);
      Opts.Metrics->gauge("fuse.bytes_saved", double(FS.BytesSaved));
    }
  }
  if (Opts.Layout) {
    layout::LayoutStats LS;
    I = runPass("layout", I, Opts, [&](const N::Imp *In) {
      return layout::materializeLayout(In, Ctx, Diags, Opts.Costs, &LS);
    });
    if (Opts.Metrics) {
      Opts.Metrics->gauge("layout.fields_realigned", LS.FieldsRealigned);
      Opts.Metrics->gauge("layout.comm_moves_localized",
                          LS.CommMovesLocalized);
      Opts.Metrics->gauge("layout.comm_cycles_saved", LS.CommCyclesSaved);
    }
  }
  if (Opts.Blocking)
    I = runPass("block-domains", I, Opts, [&](const N::Imp *In) {
      return blockDomains(In, Ctx, Diags);
    });
  if (Opts.CommSchedule)
    I = runPass("comm-schedule", I, Opts, [&](const N::Imp *In) {
      return commSchedule(In, Ctx, Diags);
    });
  if (Diags.errorCount() != ErrorsBefore)
    return Program;
  const auto *Result = cast<N::ProgramImp>(I);
  {
    observe::WallSpan Span(Opts.Trace, "verify", "pass");
    // After extract-comm, comm calls are canonical (whole clause sources
    // only); the strict check catches any pass — fusion above all — that
    // would drag computation across a communication boundary.
    N::VerifyOptions VOpts;
    VOpts.CanonicalComm = Opts.ExtractComm;
    VOpts.LayoutConsistency = Opts.Layout;
    if (!N::verify(Result, Diags, VOpts))
      return Program;
  }
  return Result;
}

static void countIn(const N::Imp *I, PhaseStats &Stats) {
  if (!I)
    return;
  switch (I->getKind()) {
  case N::Imp::Kind::Program:
    countIn(cast<N::ProgramImp>(I)->getBody(), Stats);
    return;
  case N::Imp::Kind::Sequentially:
    for (const N::Imp *A : cast<N::SequentiallyImp>(I)->getActions())
      countIn(A, Stats);
    return;
  case N::Imp::Kind::Concurrently:
    for (const N::Imp *A : cast<N::ConcurrentlyImp>(I)->getActions())
      countIn(A, Stats);
    return;
  case N::Imp::Kind::Move: {
    const auto *M = cast<N::MoveImp>(I);
    Stats.MoveClauses += M->getClauses().size();
    switch (classifyAction(M)) {
    case PhaseKind::Computation:
      ++Stats.ComputationPhases;
      break;
    case PhaseKind::Communication:
      ++Stats.CommunicationPhases;
      break;
    case PhaseKind::HostScalar:
      ++Stats.HostScalarPhases;
      break;
    case PhaseKind::Structured:
      break;
    }
    return;
  }
  case N::Imp::Kind::IfThenElse: {
    const auto *If = cast<N::IfThenElseImp>(I);
    countIn(If->getThen(), Stats);
    countIn(If->getElse(), Stats);
    return;
  }
  case N::Imp::Kind::While:
    countIn(cast<N::WhileImp>(I)->getBody(), Stats);
    return;
  case N::Imp::Kind::WithDecl:
    countIn(cast<N::WithDeclImp>(I)->getBody(), Stats);
    return;
  case N::Imp::Kind::WithDomain:
    countIn(cast<N::WithDomainImp>(I)->getBody(), Stats);
    return;
  case N::Imp::Kind::Skip:
    return;
  case N::Imp::Kind::Do:
    countIn(cast<N::DoImp>(I)->getBody(), Stats);
    return;
  case N::Imp::Kind::Call:
    ++Stats.HostScalarPhases;
    return;
  }
}

PhaseStats transform::countPhases(const N::Imp *Root) {
  PhaseStats Stats;
  countIn(Root, Stats);
  return Stats;
}
