//===- transform/Transforms.cpp - Pass pipeline and statistics --------------===//
//
// Part of the Fortran-90-Y reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "transform/Transforms.h"

#include "nir/Verifier.h"

using namespace f90y;
using namespace f90y::transform;
namespace N = f90y::nir;

const N::ProgramImp *transform::optimize(const N::ProgramImp *Program,
                                         N::NIRContext &Ctx,
                                         DiagnosticEngine &Diags,
                                         const TransformOptions &Opts) {
  const N::Imp *I = Program;
  unsigned ErrorsBefore = Diags.errorCount();
  if (Opts.ExtractComm)
    I = extractComm(I, Ctx, Diags);
  if (Opts.MaskSections)
    I = maskSections(I, Ctx, Diags);
  if (Opts.Blocking)
    I = blockDomains(I, Ctx, Diags);
  if (Diags.errorCount() != ErrorsBefore)
    return Program;
  const auto *Result = cast<N::ProgramImp>(I);
  if (!N::verify(Result, Diags))
    return Program;
  return Result;
}

static void countIn(const N::Imp *I, PhaseStats &Stats) {
  switch (I->getKind()) {
  case N::Imp::Kind::Program:
    countIn(cast<N::ProgramImp>(I)->getBody(), Stats);
    return;
  case N::Imp::Kind::Sequentially:
    for (const N::Imp *A : cast<N::SequentiallyImp>(I)->getActions())
      countIn(A, Stats);
    return;
  case N::Imp::Kind::Concurrently:
    for (const N::Imp *A : cast<N::ConcurrentlyImp>(I)->getActions())
      countIn(A, Stats);
    return;
  case N::Imp::Kind::Move: {
    const auto *M = cast<N::MoveImp>(I);
    Stats.MoveClauses += M->getClauses().size();
    switch (classifyAction(M)) {
    case PhaseKind::Computation:
      ++Stats.ComputationPhases;
      break;
    case PhaseKind::Communication:
      ++Stats.CommunicationPhases;
      break;
    case PhaseKind::HostScalar:
      ++Stats.HostScalarPhases;
      break;
    case PhaseKind::Structured:
      break;
    }
    return;
  }
  case N::Imp::Kind::IfThenElse: {
    const auto *If = cast<N::IfThenElseImp>(I);
    countIn(If->getThen(), Stats);
    countIn(If->getElse(), Stats);
    return;
  }
  case N::Imp::Kind::While:
    countIn(cast<N::WhileImp>(I)->getBody(), Stats);
    return;
  case N::Imp::Kind::WithDecl:
    countIn(cast<N::WithDeclImp>(I)->getBody(), Stats);
    return;
  case N::Imp::Kind::WithDomain:
    countIn(cast<N::WithDomainImp>(I)->getBody(), Stats);
    return;
  case N::Imp::Kind::Skip:
    return;
  case N::Imp::Kind::Do:
    countIn(cast<N::DoImp>(I)->getBody(), Stats);
    return;
  case N::Imp::Kind::Call:
    ++Stats.HostScalarPhases;
    return;
  }
}

PhaseStats transform::countPhases(const N::Imp *Root) {
  PhaseStats Stats;
  countIn(Root, Stats);
  return Stats;
}
