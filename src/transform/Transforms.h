//===- transform/Transforms.h - Target-independent NIR passes -----*- C++ -*-===//
//
// Part of the Fortran-90-Y reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The NIR optimization stage (paper Section 4.2): source-to-source
/// transformations over NIR whose object is to produce programs in which
/// computations over like shapes are blocked as much as possible, forming
/// computation phases punctuated by communication.
///
/// Passes:
///  - extractComm: hoists communication intrinsics (cshift/eoshift/
///    transpose) and reductions out of computational MOVEs into temporaries
///    (the tmp0/tmp1 of paper Figure 12), leaving each MOVE either a pure
///    local computation or a single communication action.
///  - maskSections: pads aligned array-section assignments into full-shape
///    masked MOVEs (paper Figure 10), turning section communication into
///    local computation and enabling blocking.
///  - fuseElementwise: eliminates single-use array temporaries by folding
///    the producer's RHS into its one consumer, so producer chains compile
///    into one PEAC sweep and the temporary's allocation disappears
///    (cross-statement elementwise fusion; runs before blockDomains so the
///    blocked phases already carry whole expressions).
///  - layout (f90y_layout's materializeLayout): alignment/layout
///    inference. Solves per-field integer offsets so co-shifted fields
///    share a placement, turning CSHIFT exchanges into local copies and
///    shrinking the residual ones (DESIGN.md Section 12). Runs between
///    fuseElementwise and blockDomains so fused comm chains are already
///    canonical but copy MOVEs can still merge into blocked phases.
///  - blockDomains: reorders independent phases and fuses adjacent
///    computation MOVEs over a common domain into single MOVEs (the shape
///    equivalent of loop fusion; paper Figure 9).
///  - commSchedule: hoists communication MOVEs above independent
///    computation so the split-phase executor can hide the exchange, and
///    coalesces adjacent same-source same-axis shifts into one
///    multi-shift exchange (one communication startup). Off by default;
///    f90yc -comm=overlap enables it.
///
//===----------------------------------------------------------------------===//

#ifndef F90Y_TRANSFORM_TRANSFORMS_H
#define F90Y_TRANSFORM_TRANSFORMS_H

#include "nir/NIRContext.h"
#include "support/Diagnostics.h"
#include "transform/Phases.h"

#include <cstdint>

namespace f90y {

namespace cm2 {
struct CostModel;
}

namespace observe {
class TraceRecorder;
class MetricsRegistry;
} // namespace observe

namespace transform {

/// Per-pass toggles (ablation benchmarks disable passes selectively).
struct TransformOptions {
  bool ExtractComm = true;
  bool MaskSections = true;
  /// Cross-statement elementwise fusion (eliminate single-use array
  /// temporaries). f90yc -fuse=off disables it.
  bool Fusion = true;
  /// Alignment/layout inference (f90yc -layout=infer). Off by default so
  /// pipelines assembled without a profile keep their historical shape;
  /// the F90Y profile turns it on.
  bool Layout = false;
  bool Blocking = true;
  /// Communication scheduling (hoist + coalesce). Off by default: it
  /// reorders and fuses comm phases, which -comm=sync runs must not see.
  bool CommSchedule = false;
  /// Cost model the layout pass weighs alignment edges with; null keeps
  /// the pass functional (weights fall back to element counts). The
  /// driver points this at CompileOptions::Costs.
  const cm2::CostModel *Costs = nullptr;
  /// Optional observability sinks; null (the default) is the zero-cost
  /// disabled path. With Trace set each pass is a wall span; with Metrics
  /// set the per-pass PhaseStats deltas are recorded as gauges.
  observe::TraceRecorder *Trace = nullptr;
  observe::MetricsRegistry *Metrics = nullptr;
};

/// Runs the enabled passes in order over \p Program and returns the
/// transformed program (verified). Returns the input unchanged if a pass
/// reports an error.
const nir::ProgramImp *optimize(const nir::ProgramImp *Program,
                                nir::NIRContext &Ctx,
                                DiagnosticEngine &Diags,
                                const TransformOptions &Opts = {});

/// Counters reported by fuseElementwise (surfaced as fuse.* metrics).
struct FusionStats {
  /// Array temporaries whose store, load, and declaration were removed.
  unsigned TempsEliminated = 0;
  /// Consumer MOVEs that absorbed at least one producer.
  unsigned MovesFused = 0;
  /// Static estimate of PE memory traffic removed: one store plus one
  /// load of the full field per eliminated temporary.
  uint64_t BytesSaved = 0;
};

/// Individual passes (each returns a new imperative tree).
const nir::Imp *extractComm(const nir::Imp *Root, nir::NIRContext &Ctx,
                            DiagnosticEngine &Diags);
const nir::Imp *maskSections(const nir::Imp *Root, nir::NIRContext &Ctx,
                             DiagnosticEngine &Diags);
const nir::Imp *fuseElementwise(const nir::Imp *Root, nir::NIRContext &Ctx,
                                DiagnosticEngine &Diags,
                                FusionStats *Stats = nullptr);
const nir::Imp *blockDomains(const nir::Imp *Root, nir::NIRContext &Ctx,
                             DiagnosticEngine &Diags);
const nir::Imp *commSchedule(const nir::Imp *Root, nir::NIRContext &Ctx,
                             DiagnosticEngine &Diags);

/// Phase statistics over a program (benchmark/regression metric for the
/// Figure 9/10 reproductions).
struct PhaseStats {
  unsigned ComputationPhases = 0;
  unsigned CommunicationPhases = 0;
  unsigned HostScalarPhases = 0;
  unsigned MoveClauses = 0;
};

PhaseStats countPhases(const nir::Imp *Root);

} // namespace transform
} // namespace f90y

#endif // F90Y_TRANSFORM_TRANSFORMS_H
