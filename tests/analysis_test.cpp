//===- tests/analysis_test.cpp - effects / type inference / phases -----------===//
//
// Part of the Fortran-90-Y reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "nir/NIRContext.h"
#include "nir/TypeInfer.h"
#include "transform/Effects.h"
#include "transform/Phases.h"

#include <gtest/gtest.h>

using namespace f90y;
using namespace f90y::nir;
using namespace f90y::transform;

namespace {

class AnalysisTest : public ::testing::Test {
protected:
  NIRContext Ctx;

  const MoveImp *fieldMove(const std::string &Dst, const Value *Src,
                           const Value *Guard = nullptr) {
    return Ctx.getMove(
        {{Guard ? Guard : Ctx.getTrue(), Src,
          Ctx.getAVar(Dst, Ctx.getEverywhere())}});
  }
};

//===--------------------------------------------------------------------===//
// Effects
//===--------------------------------------------------------------------===//

TEST_F(AnalysisTest, MoveEffects) {
  const Imp *M = fieldMove(
      "b", Ctx.getBinary(BinaryOp::Add, Ctx.getAVar("a", Ctx.getEverywhere()),
                         Ctx.getSVar("n")));
  Effects E = effectsOf(M);
  EXPECT_TRUE(E.Reads.count("a"));
  EXPECT_TRUE(E.Reads.count("n"));
  EXPECT_TRUE(E.Writes.count("b"));
  EXPECT_FALSE(E.Writes.count("a"));
}

TEST_F(AnalysisTest, SubscriptIndicesAreReads) {
  const Imp *M = Ctx.getMove(
      {{Ctx.getTrue(), Ctx.getIntConst(1),
        Ctx.getAVar("c", Ctx.getSubscript({Ctx.getSVar("i")}))}});
  Effects E = effectsOf(M);
  EXPECT_TRUE(E.Writes.count("c"));
  EXPECT_TRUE(E.Reads.count("i"));
}

TEST_F(AnalysisTest, WithDeclHidesLocalNames) {
  const Decl *D = Ctx.getDecl("tmp", Ctx.getFloat64());
  const Imp *Body = Ctx.getSequentially(
      {Ctx.getMove({{Ctx.getTrue(), Ctx.getSVar("x"), Ctx.getSVar("tmp")}}),
       Ctx.getMove(
           {{Ctx.getTrue(), Ctx.getSVar("tmp"), Ctx.getSVar("y")}})});
  Effects E = effectsOf(Ctx.getWithDecl(D, Body));
  EXPECT_FALSE(E.Reads.count("tmp"));
  EXPECT_FALSE(E.Writes.count("tmp"));
  EXPECT_TRUE(E.Reads.count("x"));
  EXPECT_TRUE(E.Writes.count("y"));
}

TEST_F(AnalysisTest, IndependenceIsSymmetricAndCorrect) {
  Effects A, B, C;
  A.Reads = {"x"};
  A.Writes = {"y"};
  B.Reads = {"z"};
  B.Writes = {"w"};
  C.Reads = {"y"}; // Reads what A writes.
  EXPECT_TRUE(independent(A, B));
  EXPECT_TRUE(independent(B, A));
  EXPECT_FALSE(independent(A, C));
  EXPECT_FALSE(independent(C, A));
  // Read-read sharing is fine.
  Effects D1, D2;
  D1.Reads = {"k"};
  D2.Reads = {"k"};
  EXPECT_TRUE(independent(D1, D2));
  // Write-write conflicts are not.
  D1.Writes = {"m"};
  D2.Writes = {"m"};
  EXPECT_FALSE(independent(D1, D2));
}

//===--------------------------------------------------------------------===//
// Type inference
//===--------------------------------------------------------------------===//

TEST_F(AnalysisTest, InferenceFollowsDeclarations) {
  ElemTypeInference Types;
  Types.addDecl(Ctx.getDeclSet(
      {Ctx.getDecl("k", Ctx.getInteger32()),
       Ctx.getDecl("x", Ctx.getFloat64()),
       Ctx.getDecl("a", Ctx.getDField(Ctx.getInterval(1, 8),
                                      Ctx.getFloat32()))}));
  EXPECT_EQ(Types.elemKindOf(Ctx.getSVar("k")), Type::Kind::Integer32);
  EXPECT_EQ(Types.elemKindOf(Ctx.getSVar("x")), Type::Kind::Float64);
  EXPECT_EQ(Types.elemKindOf(Ctx.getAVar("a", Ctx.getEverywhere())),
            Type::Kind::Float32);
}

TEST_F(AnalysisTest, InferencePromotesThroughArithmetic) {
  ElemTypeInference Types;
  Types.addBinding("k", Ctx.getInteger32());
  Types.addBinding("x", Ctx.getFloat64());
  const Value *Mixed =
      Ctx.getBinary(BinaryOp::Add, Ctx.getSVar("k"), Ctx.getSVar("x"));
  EXPECT_EQ(Types.elemKindOf(Mixed), Type::Kind::Float64);
  const Value *Cmp =
      Ctx.getBinary(BinaryOp::Lt, Ctx.getSVar("k"), Ctx.getSVar("x"));
  EXPECT_EQ(Types.elemKindOf(Cmp), Type::Kind::Logical32);
  const Value *IntInt =
      Ctx.getBinary(BinaryOp::Mul, Ctx.getSVar("k"), Ctx.getSVar("k"));
  EXPECT_EQ(Types.elemKindOf(IntInt), Type::Kind::Integer32);
}

TEST_F(AnalysisTest, PowKeepsBaseTypeAndCoordsAreInt) {
  ElemTypeInference Types;
  Types.addBinding("x", Ctx.getFloat32());
  const Value *Pow = Ctx.getBinary(BinaryOp::Pow, Ctx.getSVar("x"),
                                   Ctx.getIntConst(2));
  EXPECT_EQ(Types.elemKindOf(Pow), Type::Kind::Float32);
  EXPECT_EQ(Types.elemKindOf(Ctx.getLocalCoord("d", 1)),
            Type::Kind::Integer32);
}

TEST_F(AnalysisTest, ReductionAndConversionTypes) {
  ElemTypeInference Types;
  Types.addBinding("a", Ctx.getDField(Ctx.getInterval(1, 8),
                                      Ctx.getLogical32()));
  const Value *Any =
      Ctx.getFcnCall("any", {Ctx.getAVar("a", Ctx.getEverywhere())});
  EXPECT_EQ(Types.elemKindOf(Any), Type::Kind::Logical32);
  const Value *Count =
      Ctx.getFcnCall("count", {Ctx.getAVar("a", Ctx.getEverywhere())});
  EXPECT_EQ(Types.elemKindOf(Count), Type::Kind::Integer32);
  const Value *ToInt =
      Ctx.getUnary(UnaryOp::FToInt, Ctx.getFloatConst(2.5));
  EXPECT_EQ(Types.elemKindOf(ToInt), Type::Kind::Integer32);
}

//===--------------------------------------------------------------------===//
// Phase classification
//===--------------------------------------------------------------------===//

TEST_F(AnalysisTest, PureFieldMoveIsComputation) {
  const Imp *M = fieldMove(
      "b", Ctx.getBinary(BinaryOp::Mul, Ctx.getAVar("a", Ctx.getEverywhere()),
                         Ctx.getIntConst(2)));
  EXPECT_EQ(classifyAction(M), PhaseKind::Computation);
}

TEST_F(AnalysisTest, ShiftMoveIsCommunication) {
  const Imp *M = fieldMove(
      "b", Ctx.getFcnCall("cshift", {Ctx.getAVar("a", Ctx.getEverywhere()),
                                     Ctx.getIntConst(1),
                                     Ctx.getIntConst(1)}));
  EXPECT_EQ(classifyAction(M), PhaseKind::Communication);
}

TEST_F(AnalysisTest, SectionMoveIsCommunication) {
  const Imp *M = Ctx.getMove(
      {{Ctx.getTrue(), Ctx.getAVar("a", Ctx.getSection({SectionTriplet{}})),
        Ctx.getAVar("b", Ctx.getSection({SectionTriplet{}}))}});
  EXPECT_EQ(classifyAction(M), PhaseKind::Communication);
}

TEST_F(AnalysisTest, ScalarAndElementMovesAreHost) {
  const Imp *Scalar = Ctx.getMove(
      {{Ctx.getTrue(), Ctx.getIntConst(1), Ctx.getSVar("x")}});
  EXPECT_EQ(classifyAction(Scalar), PhaseKind::HostScalar);
  const Imp *Elem = Ctx.getMove(
      {{Ctx.getTrue(), Ctx.getIntConst(1),
        Ctx.getAVar("a", Ctx.getSubscript({Ctx.getIntConst(3)}))}});
  EXPECT_EQ(classifyAction(Elem), PhaseKind::HostScalar);
}

TEST_F(AnalysisTest, ControlIsStructured) {
  EXPECT_EQ(classifyAction(Ctx.getDo(Ctx.getDomainRef("d"), Ctx.getSkip())),
            PhaseKind::Structured);
  EXPECT_EQ(classifyAction(Ctx.getSkip()), PhaseKind::Structured);
  EXPECT_EQ(classifyAction(Ctx.getCall("print", {})),
            PhaseKind::HostScalar);
}

TEST_F(AnalysisTest, MergeStaysComputation) {
  const Imp *M = fieldMove(
      "b", Ctx.getFcnCall("merge", {Ctx.getAVar("a", Ctx.getEverywhere()),
                                    Ctx.getAVar("b", Ctx.getEverywhere()),
                                    Ctx.getAVar("m", Ctx.getEverywhere())}));
  EXPECT_EQ(classifyAction(M), PhaseKind::Computation);
}

TEST_F(AnalysisTest, ComputationDomainComesFromDeclaredDst) {
  ElemTypeInference Types;
  Types.addBinding("b", Ctx.getDField(Ctx.getDomainRef("alpha"),
                                      Ctx.getFloat32()));
  const auto *M = fieldMove("b", Ctx.getIntConst(1));
  EXPECT_EQ(computationDomainOf(cast<MoveImp>(M), Types), "alpha");
  // Unknown destination: no domain.
  ElemTypeInference Empty;
  EXPECT_EQ(computationDomainOf(cast<MoveImp>(M), Empty), "");
}

} // namespace
