//===- tests/backend_test.cpp - CM2/FE/PE compiler tests --------------------===//
//
// Part of the Fortran-90-Y reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The central correctness property of the reproduction: for every test
/// program, compiled execution on the simulated CM/2 (host code + PEAC
/// virtual-subgrid loops + CM runtime communication) computes exactly what
/// the reference NIR interpreter computes. Plus structural checks on the
/// generated PEAC (chaining, dual issue, madd fusion, spills).
///
//===----------------------------------------------------------------------===//

#include "driver/Driver.h"
#include "interp/Interpreter.h"

#include <gtest/gtest.h>

using namespace f90y;
using namespace f90y::driver;

namespace {

cm2::CostModel testMachine(unsigned PEs = 16) {
  cm2::CostModel C;
  C.NumPEs = PEs;
  return C;
}

/// Compiles and runs \p Src under \p Profile; compares every named array
/// and scalar (and PRINT output) against the reference interpreter.
class BackendTest : public ::testing::Test {
protected:
  void compareWithInterp(const std::string &Src,
                         const std::vector<std::string> &Arrays,
                         const std::vector<std::string> &Scalars = {},
                         Profile P = Profile::F90Y, unsigned PEs = 16,
                         double Tol = 1e-9) {
    CompileOptions Opts = CompileOptions::forProfile(P, testMachine(PEs));
    Compilation C(Opts);
    ASSERT_TRUE(C.compile(Src)) << C.diags().str();

    // Reference run.
    DiagnosticEngine IDiags;
    interp::Interpreter Interp(IDiags);
    ASSERT_TRUE(Interp.run(C.artifacts().RawNIR)) << IDiags.str();

    // Simulated run.
    Execution Exec(Opts.Costs);
    auto Report = Exec.run(C.artifacts().Compiled.Program);
    ASSERT_TRUE(Report.has_value()) << Exec.diags().str();

    EXPECT_EQ(Report->Output, Interp.output());

    for (const std::string &Name : Arrays) {
      const interp::ArrayStorage *Ref = Interp.getArray(Name);
      ASSERT_NE(Ref, nullptr) << Name;
      int Handle = Exec.executor().fieldHandle(Name);
      ASSERT_GE(Handle, 0) << Name << " not allocated on the machine";
      const runtime::PeArray &Got = Exec.runtime().field(Handle);

      // Compare element-by-element through global coordinates.
      std::vector<int64_t> Coord(Ref->Extents.size(), 0);
      std::vector<int64_t> Pos(Ref->Extents.size(), 0);
      bool Done = Ref->Extents.empty();
      while (!Done) {
        int64_t PE, Off;
        Got.Geo->locate(Pos, PE, Off);
        double Machine = Got.peBase(PE)[Off];
        double Reference = Ref->Data[Ref->linearIndex(Pos)].asReal();
        ASSERT_NEAR(Machine, Reference, Tol)
            << Name << " at position " << Pos[0]
            << (Pos.size() > 1 ? "," + std::to_string(Pos[1]) : "");
        size_t K = Pos.size();
        Done = true;
        while (K-- > 0) {
          if (++Pos[K] < Ref->Extents[K].size()) {
            Done = false;
            break;
          }
          Pos[K] = 0;
        }
      }
      (void)Coord;
    }

    for (const std::string &Name : Scalars) {
      auto Ref = Interp.getScalar(Name);
      auto Got = Exec.executor().getScalar(Name);
      ASSERT_TRUE(Ref.has_value()) << Name;
      ASSERT_TRUE(Got.has_value()) << Name;
      EXPECT_NEAR(Got->asReal(), Ref->asReal(), Tol) << Name;
    }
  }
};

//===--------------------------------------------------------------------===//
// End-to-end correctness (differential against the interpreter)
//===--------------------------------------------------------------------===//

TEST_F(BackendTest, WholeArrayArithmetic) {
  compareWithInterp("program p\n"
                    "integer k(128,64), l(128)\n"
                    "k = 3\n"
                    "l = 6\n"
                    "k = 2*k + 5\n"
                    "end\n",
                    {"k", "l"});
}

TEST_F(BackendTest, FloatExpressionWithTranscendentals) {
  compareWithInterp("program p\n"
                    "real a(32), b(32)\n"
                    "integer i\n"
                    "do i=1,32\n"
                    "  a(i) = 0.1*i\n"
                    "end do\n"
                    "b = sqrt(a)*sin(a) + exp(-a)\n"
                    "end\n",
                    {"a", "b"}, {}, Profile::F90Y, 16, 1e-12);
}

TEST_F(BackendTest, CShiftStencil) {
  compareWithInterp("program p\n"
                    "real u(16,16), z(16,16)\n"
                    "integer i, j\n"
                    "forall (i=1:16, j=1:16) u(i,j) = i*100 + j\n"
                    "z = 0.25*(cshift(u,1,1) + cshift(u,-1,1) &\n"
                    "        + cshift(u,1,2) + cshift(u,-1,2))\n"
                    "end\n",
                    {"u", "z"});
}

TEST_F(BackendTest, TimeSteppedStencilLoop) {
  compareWithInterp("program p\n"
                    "real u(12,12), unew(12,12)\n"
                    "integer i, j, t\n"
                    "forall (i=1:12, j=1:12) u(i,j) = i + 2*j\n"
                    "do t=1,5\n"
                    "  unew = 0.25*(cshift(u,1,1) + cshift(u,-1,1) &\n"
                    "             + cshift(u,1,2) + cshift(u,-1,2))\n"
                    "  u = unew\n"
                    "end do\n"
                    "end\n",
                    // 'unew' is a single-use temporary: fusion folds it
                    // into 'u' and deletes its allocation, so only 'u'
                    // survives to be compared.
                    {"u"});
}

TEST_F(BackendTest, WhereMaskedAssignment) {
  compareWithInterp("program p\n"
                    "integer a(16,16), b(16,16)\n"
                    "integer i, j\n"
                    "forall (i=1:16, j=1:16) a(i,j) = i - j\n"
                    "where (a > 0)\n"
                    "  b = a*a\n"
                    "elsewhere\n"
                    "  b = -a\n"
                    "end where\n"
                    "end\n",
                    {"a", "b"});
}

TEST_F(BackendTest, Figure10StridedSections) {
  compareWithInterp("program p\n"
                    "integer a(32,32), b(32,32)\n"
                    "integer, dimension(32) :: c\n"
                    "integer n\n"
                    "n = 3\n"
                    "a = n\n"
                    "b(1:32:2,:) = a(1:32:2,:)\n"
                    "c = n+1\n"
                    "b(2:32:2,:) = 5*a(2:32:2,:)\n"
                    "end\n",
                    {"a", "b", "c"}, {"n"});
}

TEST_F(BackendTest, MisalignedSectionCopy) {
  compareWithInterp("program p\n"
                    "integer l(128), i\n"
                    "do i=1,128\n"
                    "  l(i) = i\n"
                    "end do\n"
                    "l(32:64) = l(96:128)\n"
                    "end\n",
                    {"l"});
}

TEST_F(BackendTest, ReductionsToScalars) {
  compareWithInterp("program p\n"
                    "real a(24), s, mx\n"
                    "integer i\n"
                    "do i=1,24\n"
                    "  a(i) = i*i - 50\n"
                    "end do\n"
                    "s = sum(a)\n"
                    "mx = maxval(a)\n"
                    "end\n",
                    {"a"}, {"s", "mx"});
}

TEST_F(BackendTest, ReductionInsideExpression) {
  compareWithInterp("program p\n"
                    "real a(16), b(16)\n"
                    "integer i\n"
                    "do i=1,16\n"
                    "  a(i) = i\n"
                    "end do\n"
                    "b = a / sum(a)\n"
                    "end\n",
                    {"a", "b"});
}

TEST_F(BackendTest, TransposeThroughRouter) {
  compareWithInterp("program p\n"
                    "integer a(8,8), b(8,8)\n"
                    "integer i, j\n"
                    "forall (i=1:8, j=1:8) a(i,j) = 10*i + j\n"
                    "b = transpose(a)\n"
                    "end\n",
                    {"a", "b"});
}

TEST_F(BackendTest, SerialLoopWithScalarControl) {
  compareWithInterp("program p\n"
                    "integer n, steps\n"
                    "n = 27\n"
                    "steps = 0\n"
                    "do while (n /= 1)\n"
                    "  if (mod(n,2) == 0) then\n"
                    "    n = n / 2\n"
                    "  else\n"
                    "    n = 3*n + 1\n"
                    "  end if\n"
                    "  steps = steps + 1\n"
                    "end do\n"
                    "end\n",
                    {}, {"n", "steps"});
}

TEST_F(BackendTest, GeneralForallScatter) {
  compareWithInterp("program p\n"
                    "integer a(8,8)\n"
                    "integer i, j\n"
                    "forall (i=1:8, j=1:8) a(j,i) = 10*i + j\n"
                    "end\n",
                    {"a"});
}

TEST_F(BackendTest, MergeElemental) {
  compareWithInterp("program p\n"
                    "integer v(16), w(16), i\n"
                    "do i=1,16\n"
                    "  v(i) = i - 8\n"
                    "end do\n"
                    "w = merge(v, -v, v > 0)\n"
                    "end\n",
                    {"v", "w"});
}

TEST_F(BackendTest, IntegerDivisionAndMod) {
  compareWithInterp("program p\n"
                    "integer a(16), b(16), c(16), i\n"
                    "do i=1,16\n"
                    "  a(i) = i*7 - 50\n"
                    "end do\n"
                    "b = a / 3\n"
                    "c = mod(a, 5)\n"
                    "end\n",
                    {"a", "b", "c"});
}

TEST_F(BackendTest, PowerStrengthReduction) {
  compareWithInterp("program p\n"
                    "real a(16), b(16), c(16)\n"
                    "integer i\n"
                    "do i=1,16\n"
                    "  a(i) = 0.5*i\n"
                    "end do\n"
                    "b = a**2\n"
                    "c = a**3 + a**0.5\n"
                    "end\n",
                    {"a", "b", "c"}, {}, Profile::F90Y, 16, 1e-10);
}

TEST_F(BackendTest, DotProductEndToEnd) {
  compareWithInterp("program p\n"
                    "real a(24), b(24), s\n"
                    "integer i\n"
                    "do i=1,24\n"
                    "  a(i) = 0.5*i\n"
                    "  b(i) = 25 - i\n"
                    "end do\n"
                    "s = dot_product(a, b)\n"
                    "end\n",
                    {"a", "b"}, {"s"});
}

TEST_F(BackendTest, PrintOutputMatches) {
  compareWithInterp("program p\n"
                    "integer v(4), i, s\n"
                    "do i=1,4\n"
                    "  v(i) = i*i\n"
                    "end do\n"
                    "s = sum(v)\n"
                    "print *, 'sum =', s\n"
                    "print *, v\n"
                    "end\n",
                    {"v"}, {"s"});
}

TEST_F(BackendTest, EoshiftBoundary) {
  compareWithInterp("program p\n"
                    "integer v(12), w(12), i\n"
                    "do i=1,12\n"
                    "  v(i) = i\n"
                    "end do\n"
                    "w = eoshift(v, -3, 1)\n"
                    "end\n",
                    {"v", "w"});
}

TEST_F(BackendTest, DeepExpressionForcesSpills) {
  // A wide expression with many simultaneously-live subterms; exercises
  // the Belady spiller. Correctness must be preserved.
  compareWithInterp(
      "program p\n"
      "real a(8), b(8), c(8), d(8), e(8), f(8), g(8), h(8), z(8)\n"
      "integer i\n"
      "do i=1,8\n"
      "  a(i) = i\n"
      "  b(i) = i+1\n"
      "  c(i) = i+2\n"
      "  d(i) = i+3\n"
      "  e(i) = i+4\n"
      "  f(i) = i+5\n"
      "  g(i) = i+6\n"
      "  h(i) = i+7\n"
      "end do\n"
      "z = (a*b + c*d) * (e*f + g*h) + (a*c + b*d) * (e*g + f*h) &\n"
      "  + (a*d + b*c) * (e*h + f*g) + (a+b)*(c+d)*(e+f)*(g+h)\n"
      "end\n",
      {"z"});
}

TEST_F(BackendTest, AllProfilesAgreeOnSemantics) {
  const std::string Src = "program p\n"
                          "real u(16,16), v(16,16), z(16,16)\n"
                          "integer i, j, t\n"
                          "forall (i=1:16, j=1:16) u(i,j) = i + 0.5*j\n"
                          "forall (i=1:16, j=1:16) v(i,j) = i*j*0.01\n"
                          "do t=1,3\n"
                          "  z = 0.5*(u - cshift(v, -1, 1)) + u*v\n"
                          "  u = u + 0.1*z\n"
                          "end do\n"
                          "end\n";
  for (Profile P : {Profile::F90Y, Profile::CMFStyle, Profile::Naive}) {
    SCOPED_TRACE(static_cast<int>(P));
    // 'z' is fused away under F90Y (single use per timestep); 'u' carries
    // its accumulated effect, so semantics are still fully compared.
    compareWithInterp(Src, {"u", "v"}, {}, P, 16, 1e-9);
  }
}

TEST_F(BackendTest, DifferentMachineSizesAgree) {
  const std::string Src = "program p\n"
                          "real a(20,12), b(20,12)\n"
                          "integer i, j\n"
                          "forall (i=1:20, j=1:12) a(i,j) = i*j\n"
                          "b = cshift(a, 3, 1) + a\n"
                          "end\n";
  for (unsigned PEs : {1u, 2u, 8u, 64u}) {
    SCOPED_TRACE(PEs);
    compareWithInterp(Src, {"a", "b"}, {}, Profile::F90Y, PEs);
  }
}

//===--------------------------------------------------------------------===//
// Generated-code structure
//===--------------------------------------------------------------------===//

TEST_F(BackendTest, BlockedProgramMakesFewerRoutines) {
  const std::string Src = "program p\n"
                          "real a(16,16), b(16,16), c(16,16)\n"
                          "a = 1.0\n"
                          "b = 2.0\n"
                          "c = a + b\n"
                          "end\n";
  Compilation Blocked(CompileOptions::forProfile(Profile::F90Y,
                                                 testMachine()));
  ASSERT_TRUE(Blocked.compile(Src)) << Blocked.diags().str();
  Compilation PerStmt(CompileOptions::forProfile(Profile::CMFStyle,
                                                 testMachine()));
  ASSERT_TRUE(PerStmt.compile(Src)) << PerStmt.diags().str();
  EXPECT_EQ(Blocked.artifacts().Compiled.Program.Routines.size(), 1u);
  EXPECT_EQ(PerStmt.artifacts().Compiled.Program.Routines.size(), 3u);
}

TEST_F(BackendTest, OptimizedCodeIsShorterThanNaive) {
  const std::string Src = "program p\n"
                          "real u(16,16), v(16,16), z(16,16)\n"
                          "real fsdx, fsdy\n"
                          "z = (fsdx*(v - cshift(v,-1,1)) &\n"
                          "   - fsdy*(u - cshift(u,-1,2))) / (u + v)\n"
                          "end\n";
  Compilation Opt(CompileOptions::forProfile(Profile::F90Y, testMachine()));
  ASSERT_TRUE(Opt.compile(Src)) << Opt.diags().str();
  Compilation Naive(CompileOptions::forProfile(Profile::Naive,
                                               testMachine()));
  ASSERT_TRUE(Naive.compile(Src)) << Naive.diags().str();

  // The compute routine is the last one (after the two shifts' absence —
  // shifts are host comm, so routine count equals compute phases).
  auto CountOf = [](const Compilation &C) {
    unsigned Instrs = 0, Slots = 0;
    for (const peac::Routine &R : C.artifacts().Compiled.Program.Routines) {
      Instrs += R.bodyInstructionCount();
      Slots += R.slotCount();
    }
    return std::make_pair(Instrs, Slots);
  };
  auto [OptInstrs, OptSlots] = CountOf(Opt);
  auto [NaiveInstrs, NaiveSlots] = CountOf(Naive);
  EXPECT_LT(OptInstrs, NaiveInstrs);
  EXPECT_LT(OptSlots, NaiveSlots);
}

TEST_F(BackendTest, ChainedOperandsAppearInOptimizedCode) {
  const std::string Src = "program p\n"
                          "real a(16), b(16), z(16)\n"
                          "z = a - b\n"
                          "end\n";
  Compilation C(CompileOptions::forProfile(Profile::F90Y, testMachine()));
  ASSERT_TRUE(C.compile(Src)) << C.diags().str();
  std::string Listing = C.artifacts().Compiled.peacListing();
  // fsubv with a chained in-memory operand, Figure 12 style.
  EXPECT_NE(Listing.find("fsubv"), std::string::npos) << Listing;
  EXPECT_NE(Listing.find("]1++"), std::string::npos) << Listing;
}

TEST_F(BackendTest, MaddFusionProducesFmaddv) {
  const std::string Src = "program p\n"
                          "real a(16), b(16), c(16), z(16)\n"
                          "z = a*b + c\n"
                          "end\n";
  Compilation C(CompileOptions::forProfile(Profile::F90Y, testMachine()));
  ASSERT_TRUE(C.compile(Src)) << C.diags().str();
  EXPECT_NE(C.artifacts().Compiled.peacListing().find("fmaddv"),
            std::string::npos)
      << C.artifacts().Compiled.peacListing();
}

TEST_F(BackendTest, CoordinateSubgridsFeedLocalUnder) {
  const std::string Src = "program p\n"
                          "integer, array(16,16) :: a\n"
                          "integer i, j\n"
                          "forall (i=1:16, j=1:16) a(i,j) = i+j\n"
                          "end\n";
  Compilation C(CompileOptions::forProfile(Profile::F90Y, testMachine()));
  ASSERT_TRUE(C.compile(Src)) << C.diags().str();
  const auto &Prog = C.artifacts().Compiled.Program;
  ASSERT_EQ(Prog.Routines.size(), 1u);
  // Find the CallPeac and check for coordinate-pointer arguments.
  bool SawCoordArg = false;
  std::function<void(const host::HostStmt *)> Walk =
      [&](const host::HostStmt *S) {
        if (const auto *Seq = dyn_cast<host::SeqStmt>(S)) {
          for (const auto &Sub : Seq->stmts())
            Walk(Sub.get());
          return;
        }
        if (const auto *A = dyn_cast<host::AllocScopeStmt>(S)) {
          Walk(A->body());
          return;
        }
        if (const auto *Call = dyn_cast<host::CallPeacStmt>(S)) {
          for (const auto &Arg : Call->args())
            if (Arg.K == host::PeacArgSpec::Kind::CoordPtr)
              SawCoordArg = true;
        }
      };
  Walk(Prog.Body.get());
  EXPECT_TRUE(SawCoordArg);
}

TEST_F(BackendTest, SpillsAppearOnlyUnderPressure) {
  const std::string Small = "program p\n"
                            "real a(8), b(8), z(8)\n"
                            "z = a + b\n"
                            "end\n";
  Compilation C(CompileOptions::forProfile(Profile::F90Y, testMachine()));
  ASSERT_TRUE(C.compile(Small)) << C.diags().str();
  for (const peac::Routine &R : C.artifacts().Compiled.Program.Routines)
    EXPECT_EQ(R.NumSpillSlots, 0u);
}

TEST_F(BackendTest, RejectsUnsupportedMisalignedExpression) {
  // Misaligned sections inside an arithmetic expression are a documented
  // prototype restriction.
  Compilation C(CompileOptions::forProfile(Profile::F90Y, testMachine()));
  EXPECT_FALSE(C.compile("program p\n"
                         "real a(16)\n"
                         "a(1:8) = 2.0*a(9:16)\n"
                         "end\n"));
  EXPECT_TRUE(C.diags().hasErrors());
}

} // namespace
