//===- tests/checkpoint_test.cpp - checkpoint/restart contract --------------===//
//
// Part of the Fortran-90-Y reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The checkpoint/restart contract (DESIGN.md section 9): a run killed at
/// a step boundary and resumed with -restore= is bit-identical - program
/// output, cycle ledger, fault counters, final field contents - to one
/// that never stopped, at every thread count, PEAC engine, and fault
/// configuration; every damaged byte of a checkpoint file is detected at
/// load (per-section CRC-32) and falls back to the previous retained
/// generation; a checkpoint from a different program or fault
/// configuration is rejected; a missing or empty restore file is a clean
/// structured failure, never a crash.
///
//===----------------------------------------------------------------------===//

#include "driver/Driver.h"
#include "observe/Metrics.h"
#include "runtime/Checkpoint.h"
#include "support/FileIO.h"
#include "support/Serialize.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

using namespace f90y;
using namespace f90y::driver;
using runtime::ckpt::CheckpointState;
using runtime::ckpt::Controller;

namespace {

cm2::CostModel machine() {
  cm2::CostModel C;
  C.NumPEs = 16;
  return C;
}

/// A stepped program crossing every checkpointed surface: grid shifts
/// (comm + possible in-flight exchange under overlap), PEAC compute,
/// scalar accumulation across iterations, and PRINT output both inside
/// the loop (partial output must survive the kill) and after it.
const char *steppedProgram() {
  return "program stepped\n"
         "integer, parameter :: n = 8\n"
         "real a(n,n), b(n,n)\n"
         "real s\n"
         "integer i, j, t\n"
         "forall (i=1:n, j=1:n) a(i,j) = sin(real(i))*real(j)\n"
         "b = cshift(a, 1, 1)\n"
         "s = 0.0\n"
         "do t = 1, 8\n"
         "  a = a + 0.25*(cshift(a,1,1) + cshift(a,-1,1) &\n"
         "      + cshift(a,1,2) + cshift(a,-1,2))\n"
         "  b = b + transpose(a)\n"
         "  s = s + sum(a)/real(n*n)\n"
         "  print *, 'step', t, s\n"
         "end do\n"
         "print *, 'final:', s, maxval(b)\n"
         "end program stepped\n";
}

/// One run configuration of the bit-identity matrix.
struct Config {
  unsigned Threads = 1;
  peac::EngineKind Engine = peac::EngineKind::Compiled;
  const char *Faults = nullptr; ///< Fault spec, or null for fault-free.
  bool Overlap = true;

  std::string str() const {
    std::string S = "threads=" + std::to_string(Threads);
    S += Engine == peac::EngineKind::Interp ? " exec=interp"
                                            : " exec=compiled";
    S += Faults ? std::string(" faults=") + Faults : " faults=off";
    return S;
  }
};

/// Everything the bit-identity contract compares.
struct Outcome {
  bool Ok = false;
  bool RestoreFailed = false;
  std::string Output;
  std::string Diags;
  runtime::CycleLedger Ledger;
  support::FaultCounters Counters;
  std::vector<double> FinalA;
  uint64_t CheckpointsWritten = 0;
};

ExecutionOptions optionsFor(const Config &Cfg,
                            const runtime::ckpt::Options &Ckpt,
                            observe::MetricsRegistry *Metrics) {
  ExecutionOptions O;
  O.Threads = Cfg.Threads;
  O.Engine = Cfg.Engine;
  O.OverlapComm = Cfg.Overlap;
  O.Metrics = Metrics;
  O.Checkpoint = Ckpt;
  if (Cfg.Faults) {
    std::string Error;
    EXPECT_TRUE(support::FaultSpec::parse(Cfg.Faults, O.Faults, Error))
        << Error;
    O.FaultSeed = 7;
  }
  return O;
}

Outcome runOnce(Compilation &C, const Config &Cfg,
                const runtime::ckpt::Options &Ckpt = {},
                observe::MetricsRegistry *Metrics = nullptr,
                uint64_t MaxSteps = 0) {
  ExecutionOptions O = optionsFor(Cfg, Ckpt, Metrics);
  O.MaxSteps = MaxSteps;
  Execution Exec(machine(), O);
  auto Report = Exec.run(C.artifacts().Compiled.Program);
  Outcome Res;
  Res.Diags = Exec.diags().str();
  Res.RestoreFailed = Exec.restoreFailed();
  if (Exec.checkpoint())
    Res.CheckpointsWritten = Exec.checkpoint()->writesCompleted();
  if (!Report)
    return Res;
  Res.Ok = true;
  Res.Output = Report->Output;
  Res.Ledger = Report->Ledger;
  Res.Counters = Report->Faults;
  int H = Exec.executor().fieldHandle("a");
  if (H >= 0)
    Res.FinalA = Exec.runtime().snapshotField(H);
  return Res;
}

void expectIdentical(const Outcome &A, const Outcome &B,
                     const std::string &What) {
  ASSERT_TRUE(A.Ok) << What << ": " << A.Diags;
  ASSERT_TRUE(B.Ok) << What << ": " << B.Diags;
  EXPECT_EQ(A.Output, B.Output) << What;
  EXPECT_EQ(A.FinalA, B.FinalA) << What;
  EXPECT_EQ(A.Ledger.NodeCycles, B.Ledger.NodeCycles) << What;
  EXPECT_EQ(A.Ledger.CallCycles, B.Ledger.CallCycles) << What;
  EXPECT_EQ(A.Ledger.CommCycles, B.Ledger.CommCycles) << What;
  EXPECT_EQ(A.Ledger.HostCycles, B.Ledger.HostCycles) << What;
  EXPECT_EQ(A.Ledger.OverlappedCycles, B.Ledger.OverlappedCycles) << What;
  EXPECT_EQ(A.Ledger.Flops, B.Ledger.Flops) << What;
  EXPECT_TRUE(A.Counters == B.Counters)
      << What << ": " << A.Counters.str() << " vs " << B.Counters.str();
}

/// Temp-file path unique to the current test.
std::string tempPath(const std::string &Leaf) {
  const ::testing::TestInfo *TI =
      ::testing::UnitTest::GetInstance()->current_test_info();
  return ::testing::TempDir() + "f90y_" + TI->test_suite_name() + "_" +
         TI->name() + "_" + Leaf;
}

void removeGenerations(const std::string &Path, unsigned Keep = 4) {
  std::remove(Path.c_str());
  for (unsigned I = 1; I <= Keep; ++I)
    std::remove((Path + "." + std::to_string(I)).c_str());
}

/// One section of a serialized checkpoint, located by walking the real
/// header layout: magic(8) version(4) count(4), then per section
/// fourcc(4) size(8) crc(4) payload.
struct RawSection {
  std::string Name;
  size_t PayloadOff = 0;
  uint64_t Size = 0;
};

std::vector<RawSection> sectionsOf(const std::string &Bytes) {
  std::vector<RawSection> Out;
  support::ByteReader R(Bytes);
  R.skip(8); // Magic.
  R.u32();   // Version.
  uint32_t N = R.u32();
  for (uint32_t I = 0; I < N && R.ok(); ++I) {
    RawSection S;
    char Fourcc[5] = {};
    uint32_t Tag = R.u32();
    std::memcpy(Fourcc, &Tag, 4);
    S.Name = Fourcc;
    S.Size = R.u64();
    R.u32(); // CRC.
    S.PayloadOff = R.position();
    R.skip(S.Size);
    if (R.ok())
      Out.push_back(S);
  }
  EXPECT_TRUE(R.ok());
  return Out;
}

/// A fully-populated state for serializer round-trip tests.
CheckpointState sampleState() {
  CheckpointState S;
  S.ProgramTag = 0xdeadbeef;
  S.StepIndex = 42;
  S.LoopId = 1;
  S.LoopDomain = "t=1:8";
  S.LoopCoord = {5};
  S.StepsExecuted = 321;
  S.Ledger.NodeCycles = 1000.5;
  S.Ledger.CommCycles = 250.25;
  S.Ledger.Flops = 12345;
  S.Output = "step 1 0.5\n";
  CheckpointState::FieldImage F;
  F.Name = "a";
  F.Kind = 1;
  F.Extents = {8, 8};
  F.Los = {1, 1};
  F.Data = {1.0, -0.0, 3.5e-300,
            std::numeric_limits<double>::quiet_NaN()};
  S.Fields.push_back(F);
  CheckpointState::ScalarImage Sc;
  Sc.Name = "s";
  Sc.ValKind = 1;
  Sc.R = 2.75;
  S.Scalars.push_back(Sc);
  S.HasFaults = 1;
  S.FaultSeed = 7;
  S.FaultProb[2] = 0.05;
  S.Faults.OpIndex[2] = 99;
  S.Faults.Counters.Injected[2] = 3;
  S.Faults.Counters.Retries = 2;
  S.PendingRemaining = 12.5;
  S.PendingFields = {"a", "b"};
  S.HasMetrics = 1;
  observe::MetricsRegistry::Sample M;
  M.Name = "exec.statements";
  M.Kind = 0;
  M.Count = 77;
  S.Metrics.push_back(M);
  return S;
}

//===----------------------------------------------------------------------===//
// Serialization format
//===----------------------------------------------------------------------===//

TEST(CheckpointFormat, RoundTripsEveryField) {
  CheckpointState S = sampleState();
  std::string Bytes = runtime::ckpt::serializeCheckpoint(S);
  CheckpointState R;
  support::RtStatus St = runtime::ckpt::deserializeCheckpoint(Bytes, R);
  ASSERT_TRUE(St.isOk()) << St.str();

  EXPECT_EQ(R.ProgramTag, S.ProgramTag);
  EXPECT_EQ(R.StepIndex, S.StepIndex);
  EXPECT_EQ(R.LoopId, S.LoopId);
  EXPECT_EQ(R.LoopDomain, S.LoopDomain);
  EXPECT_EQ(R.LoopCoord, S.LoopCoord);
  EXPECT_EQ(R.StepsExecuted, S.StepsExecuted);
  EXPECT_EQ(R.Ledger.NodeCycles, S.Ledger.NodeCycles);
  EXPECT_EQ(R.Ledger.CommCycles, S.Ledger.CommCycles);
  EXPECT_EQ(R.Ledger.Flops, S.Ledger.Flops);
  EXPECT_EQ(R.Output, S.Output);
  ASSERT_EQ(R.Fields.size(), 1u);
  EXPECT_EQ(R.Fields[0].Name, "a");
  EXPECT_EQ(R.Fields[0].Extents, S.Fields[0].Extents);
  // Doubles travel as IEEE bits: NaNs and signed zeros round-trip.
  ASSERT_EQ(R.Fields[0].Data.size(), S.Fields[0].Data.size());
  EXPECT_EQ(std::memcmp(R.Fields[0].Data.data(), S.Fields[0].Data.data(),
                        S.Fields[0].Data.size() * sizeof(double)),
            0);
  ASSERT_EQ(R.Scalars.size(), 1u);
  EXPECT_EQ(R.Scalars[0].Name, "s");
  EXPECT_EQ(R.Scalars[0].R, 2.75);
  EXPECT_EQ(R.HasFaults, 1);
  EXPECT_EQ(R.FaultSeed, 7u);
  EXPECT_EQ(R.FaultProb[2], 0.05);
  EXPECT_EQ(R.Faults.OpIndex[2], 99u);
  EXPECT_EQ(R.Faults.Counters.Injected[2], 3u);
  EXPECT_EQ(R.Faults.Counters.Retries, 2u);
  EXPECT_EQ(R.PendingRemaining, 12.5);
  EXPECT_EQ(R.PendingFields, S.PendingFields);
  ASSERT_EQ(R.Metrics.size(), 1u);
  EXPECT_EQ(R.Metrics[0].Name, "exec.statements");
  EXPECT_EQ(R.Metrics[0].Count, 77u);
}

TEST(CheckpointFormat, DetectsBitFlipInEverySection) {
  std::string Bytes = runtime::ckpt::serializeCheckpoint(sampleState());
  std::vector<RawSection> Sections = sectionsOf(Bytes);
  ASSERT_EQ(Sections.size(), 8u); // All sections incl. optional METR.
  for (const RawSection &Sec : Sections) {
    ASSERT_GT(Sec.Size, 0u) << Sec.Name;
    std::string Damaged = Bytes;
    Damaged[Sec.PayloadOff + Sec.Size / 2] ^= 0x10;
    CheckpointState Out;
    support::RtStatus St =
        runtime::ckpt::deserializeCheckpoint(Damaged, Out);
    EXPECT_FALSE(St.isOk()) << "flip in section " << Sec.Name;
    EXPECT_EQ(St.code(), support::RtCode::CheckpointInvalid) << Sec.Name;
    EXPECT_NE(St.str().find(Sec.Name), std::string::npos)
        << "diagnostic should name section " << Sec.Name << ": "
        << St.str();
  }
}

TEST(CheckpointFormat, DetectsTruncationAnywhere) {
  std::string Bytes = runtime::ckpt::serializeCheckpoint(sampleState());
  // Every shorter prefix must fail cleanly (never crash or succeed).
  for (size_t Len : {size_t(0), size_t(4), size_t(15), Bytes.size() / 2,
                     Bytes.size() - 1}) {
    CheckpointState Out;
    support::RtStatus St =
        runtime::ckpt::deserializeCheckpoint(Bytes.substr(0, Len), Out);
    EXPECT_FALSE(St.isOk()) << "prefix of " << Len << " bytes";
    EXPECT_EQ(St.code(), support::RtCode::CheckpointInvalid);
  }
}

TEST(CheckpointFormat, DetectsBadMagicAndVersion) {
  std::string Bytes = runtime::ckpt::serializeCheckpoint(sampleState());
  CheckpointState Out;

  std::string BadMagic = Bytes;
  BadMagic[0] = 'X';
  EXPECT_FALSE(runtime::ckpt::deserializeCheckpoint(BadMagic, Out).isOk());

  std::string BadVersion = Bytes;
  BadVersion[8] = static_cast<char>(runtime::ckpt::FormatVersion + 1);
  support::RtStatus St =
      runtime::ckpt::deserializeCheckpoint(BadVersion, Out);
  EXPECT_FALSE(St.isOk());
  EXPECT_NE(St.str().find("version"), std::string::npos) << St.str();
}

//===----------------------------------------------------------------------===//
// Kill/restore bit-identity
//===----------------------------------------------------------------------===//

class CheckpointRestartTest : public ::testing::Test {
protected:
  Compilation C{CompileOptions::forProfile(Profile::F90Y, machine())};

  void SetUp() override {
    ASSERT_TRUE(C.compile(steppedProgram())) << C.diags().str();
  }

  /// Baseline, kill mid-run (the -max-steps watchdog is the in-process
  /// stand-in for a crash: the run dies between statements, past several
  /// committed checkpoints), restore, and compare against the baseline.
  void runMatrixCase(const Config &Cfg) {
    SCOPED_TRACE(Cfg.str());
    std::string Path = tempPath("ck_" + std::to_string(Cfg.Threads) +
                                (Cfg.Faults ? "_f" : "") + ".bin");
    removeGenerations(Path);

    observe::MetricsRegistry BaseMetrics;
    Outcome Base = runOnce(C, Cfg, {}, &BaseMetrics);
    ASSERT_TRUE(Base.Ok) << Base.Diags;
    uint64_t TotalStatements =
        static_cast<uint64_t>(BaseMetrics.value("exec.statements"));
    ASSERT_GT(TotalStatements, 16u);

    runtime::ckpt::Options WriteOpts;
    WriteOpts.Path = Path;
    WriteOpts.Every = 1;
    Outcome Killed =
        runOnce(C, Cfg, WriteOpts, nullptr, TotalStatements / 2);
    EXPECT_FALSE(Killed.Ok); // The watchdog killed it mid-run.
    ASSERT_GE(Killed.CheckpointsWritten, 1u) << Killed.Diags;

    runtime::ckpt::Options RestoreOpts;
    RestoreOpts.RestorePath = Path;
    Outcome Resumed = runOnce(C, Cfg, RestoreOpts);
    expectIdentical(Base, Resumed, Cfg.str());
    removeGenerations(Path);
  }
};

TEST_F(CheckpointRestartTest, BitIdenticalAcrossThreadsAndEngines) {
  for (unsigned Threads : {1u, 8u})
    for (peac::EngineKind Engine :
         {peac::EngineKind::Interp, peac::EngineKind::Compiled})
      runMatrixCase({Threads, Engine, nullptr, true});
}

TEST_F(CheckpointRestartTest, BitIdenticalUnderFaultInjection) {
  const char *Spec = "router-drop:0.05,corrupt:0.05,pe-trap:0.05,fpu:0.05";
  for (unsigned Threads : {1u, 8u})
    runMatrixCase({Threads, peac::EngineKind::Compiled, Spec, true});
}

TEST_F(CheckpointRestartTest, BitIdenticalWithStrictCommModel) {
  runMatrixCase({4, peac::EngineKind::Compiled, nullptr, false});
}

TEST_F(CheckpointRestartTest, RestoredRunContinuesMetrics) {
  std::string Path = tempPath("ck.bin");
  removeGenerations(Path);
  Config Cfg{1, peac::EngineKind::Compiled, nullptr, true};

  observe::MetricsRegistry BaseMetrics;
  Outcome Base = runOnce(C, Cfg, {}, &BaseMetrics);
  ASSERT_TRUE(Base.Ok) << Base.Diags;
  uint64_t TotalStatements =
      static_cast<uint64_t>(BaseMetrics.value("exec.statements"));

  runtime::ckpt::Options WriteOpts;
  WriteOpts.Path = Path;
  observe::MetricsRegistry KilledMetrics;
  Outcome Killed =
      runOnce(C, Cfg, WriteOpts, &KilledMetrics, TotalStatements / 2);
  ASSERT_FALSE(Killed.Ok);
  EXPECT_GE(KilledMetrics.value("ckpt.write.count"), 1.0);
  EXPECT_GT(KilledMetrics.value("ckpt.write.bytes"), 0.0);

  runtime::ckpt::Options RestoreOpts;
  RestoreOpts.RestorePath = Path;
  observe::MetricsRegistry ResumeMetrics;
  Outcome Resumed = runOnce(C, Cfg, RestoreOpts, &ResumeMetrics);
  ASSERT_TRUE(Resumed.Ok) << Resumed.Diags;
  EXPECT_EQ(Resumed.Output, Base.Output);
  // The restored registry continues the killed run's counts: the total
  // statement count matches an uninterrupted run (not just the tail).
  EXPECT_EQ(ResumeMetrics.value("exec.statements"),
            BaseMetrics.value("exec.statements"));
  EXPECT_GE(ResumeMetrics.value("ckpt.restore.count"), 1.0);
  removeGenerations(Path);
}

//===----------------------------------------------------------------------===//
// Damage detection and fallback
//===----------------------------------------------------------------------===//

class CheckpointDamageTest : public CheckpointRestartTest {
protected:
  Config Cfg{1, peac::EngineKind::Compiled, nullptr, true};

  /// Runs to completion writing every-step checkpoints, so Path, Path.1,
  /// Path.2 all exist (Keep=3) when the helper returns.
  void writeGenerations(const std::string &Path) {
    runtime::ckpt::Options WriteOpts;
    WriteOpts.Path = Path;
    Outcome Full = runOnce(C, Cfg, WriteOpts);
    ASSERT_TRUE(Full.Ok) << Full.Diags;
    ASSERT_GE(Full.CheckpointsWritten, 3u);
  }
};

TEST_F(CheckpointDamageTest, FallsBackToPreviousGenerationOnCorruption) {
  std::string Path = tempPath("ck.bin");
  removeGenerations(Path);
  writeGenerations(Path);
  Outcome Base = runOnce(C, Cfg);

  // Damage the primary checkpoint; the rotated previous generation is
  // intact, so restore succeeds from it - and the run is still
  // bit-identical (it just resumes from one step earlier).
  std::string Bytes;
  ASSERT_TRUE(support::readFile(Path, Bytes));
  Bytes[Bytes.size() / 2] ^= 0x01;
  ASSERT_TRUE(support::atomicWriteFile(Path, Bytes));

  runtime::ckpt::Options RestoreOpts;
  RestoreOpts.RestorePath = Path;
  observe::MetricsRegistry Metrics;
  Outcome Resumed = runOnce(C, Cfg, RestoreOpts, &Metrics);
  expectIdentical(Base, Resumed, "fallback restore");
  EXPECT_GE(Metrics.value("ckpt.restore.fallbacks"), 1.0);
  removeGenerations(Path);
}

TEST_F(CheckpointDamageTest, FailsCleanlyWhenEveryGenerationIsDamaged) {
  std::string Path = tempPath("ck.bin");
  removeGenerations(Path);
  writeGenerations(Path);

  for (const std::string &P :
       {Path, Path + ".1", Path + ".2"}) {
    std::string Bytes;
    ASSERT_TRUE(support::readFile(P, Bytes));
    Bytes[Bytes.size() / 2] ^= 0x01;
    ASSERT_TRUE(support::atomicWriteFile(P, Bytes));
  }

  runtime::ckpt::Options RestoreOpts;
  RestoreOpts.RestorePath = Path;
  Outcome Resumed = runOnce(C, Cfg, RestoreOpts);
  EXPECT_FALSE(Resumed.Ok);
  EXPECT_TRUE(Resumed.RestoreFailed);
  EXPECT_NE(Resumed.Diags.find("cannot restore"), std::string::npos)
      << Resumed.Diags;
  removeGenerations(Path);
}

TEST_F(CheckpointDamageTest, MissingRestoreFileFailsCleanly) {
  runtime::ckpt::Options RestoreOpts;
  RestoreOpts.RestorePath = tempPath("never_written.bin");
  Outcome Resumed = runOnce(C, Cfg, RestoreOpts);
  EXPECT_FALSE(Resumed.Ok);
  EXPECT_TRUE(Resumed.RestoreFailed);
  EXPECT_NE(Resumed.Diags.find("cannot restore"), std::string::npos);
}

TEST_F(CheckpointDamageTest, EmptyRestoreFileFailsCleanly) {
  std::string Path = tempPath("empty.bin");
  ASSERT_TRUE(support::atomicWriteFile(Path, ""));
  runtime::ckpt::Options RestoreOpts;
  RestoreOpts.RestorePath = Path;
  Outcome Resumed = runOnce(C, Cfg, RestoreOpts);
  EXPECT_FALSE(Resumed.Ok);
  EXPECT_TRUE(Resumed.RestoreFailed);
  std::remove(Path.c_str());
}

TEST_F(CheckpointDamageTest, RejectsCheckpointFromDifferentProgram) {
  std::string Path = tempPath("ck.bin");
  removeGenerations(Path);
  writeGenerations(Path);

  Compilation Other{CompileOptions::forProfile(Profile::F90Y, machine())};
  ASSERT_TRUE(Other.compile("program other\n"
                            "real x(4)\n"
                            "integer t\n"
                            "x = 1.0\n"
                            "do t = 1, 3\n"
                            "  x = x + 1.0\n"
                            "end do\n"
                            "print *, sum(x)\n"
                            "end program other\n"))
      << Other.diags().str();

  runtime::ckpt::Options RestoreOpts;
  RestoreOpts.RestorePath = Path;
  Outcome Resumed = runOnce(Other, Cfg, RestoreOpts);
  EXPECT_FALSE(Resumed.Ok);
  EXPECT_TRUE(Resumed.RestoreFailed);
  removeGenerations(Path);
}

TEST_F(CheckpointDamageTest, RejectsCheckpointFromDifferentFaultConfig) {
  std::string Path = tempPath("ck.bin");
  removeGenerations(Path);
  writeGenerations(Path); // Fault-free run.

  Config Faulty = Cfg;
  Faulty.Faults = "corrupt:0.05";
  runtime::ckpt::Options RestoreOpts;
  RestoreOpts.RestorePath = Path;
  Outcome Resumed = runOnce(C, Faulty, RestoreOpts);
  EXPECT_FALSE(Resumed.Ok);
  EXPECT_TRUE(Resumed.RestoreFailed);
  removeGenerations(Path);
}

TEST_F(CheckpointDamageTest, CheckpointEveryNWritesEveryNth) {
  std::string Path = tempPath("ck.bin");
  removeGenerations(Path);
  runtime::ckpt::Options WriteOpts;
  WriteOpts.Path = Path;
  WriteOpts.Every = 3; // 8 steps -> checkpoints at steps 3 and 6.
  Outcome Full = runOnce(C, Cfg, WriteOpts);
  ASSERT_TRUE(Full.Ok) << Full.Diags;
  EXPECT_EQ(Full.CheckpointsWritten, 2u);
  removeGenerations(Path);
}

} // namespace
