//===- tests/cm5_test.cpp - CM/5 machine-model tests -------------------------===//
//
// Part of the Fortran-90-Y reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Section 5.3.1 retarget: the identical compiler specification runs
/// against the CM/5 machine description (8-wide vector units, 16
/// registers, 1024 nodes at 32 MHz). Functional results must equal the
/// reference interpreter — the 8-wide executor path and the wider
/// register file get their own differential coverage here — and the
/// performance relationships the paper predicts must hold.
///
//===----------------------------------------------------------------------===//

#include "driver/Driver.h"
#include "driver/Workloads.h"
#include "interp/Interpreter.h"

#include <gtest/gtest.h>

using namespace f90y;
using namespace f90y::driver;

namespace {

double maxError(Execution &Exec, const interp::Interpreter &Interp,
                const std::string &Name) {
  const interp::ArrayStorage *Ref = Interp.getArray(Name);
  int Handle = Exec.executor().fieldHandle(Name);
  EXPECT_NE(Ref, nullptr);
  EXPECT_GE(Handle, 0);
  if (!Ref || Handle < 0)
    return 1e300;
  const runtime::PeArray &Got = Exec.runtime().field(Handle);
  double Max = 0;
  std::vector<int64_t> Pos(Ref->Extents.size(), 0);
  bool Done = false;
  while (!Done) {
    int64_t PE, Off;
    Got.Geo->locate(Pos, PE, Off);
    double E = std::abs(Got.peBase(PE)[Off] -
                        Ref->Data[Ref->linearIndex(Pos)].asReal());
    Max = E > Max ? E : Max;
    size_t K = Pos.size();
    Done = true;
    while (K-- > 0) {
      if (++Pos[K] < Ref->Extents[K].size()) {
        Done = false;
        break;
      }
      Pos[K] = 0;
    }
  }
  return Max;
}

TEST(Cm5Test, ModelParameters) {
  cm2::CostModel M = cm2::CostModel::cm5();
  EXPECT_EQ(M.NumPEs, 1024u);
  EXPECT_EQ(M.VectorWidth, 8u);
  EXPECT_EQ(M.VectorRegs, 16u);
  EXPECT_DOUBLE_EQ(M.ClockMHz, 32.0);
  // One second of cycles at 32 MHz.
  EXPECT_DOUBLE_EQ(M.seconds(32e6), 1.0);
}

TEST(Cm5Test, EightWideExecutionMatchesReference) {
  // Odd sizes exercise the 8-wide padding path.
  const std::string Src = "program p\n"
                          "real a(19,13), b(19,13), z(19,13)\n"
                          "integer i, j\n"
                          "forall (i=1:19, j=1:13) a(i,j) = real(i) - "
                          "0.3*real(j)\n"
                          "forall (i=1:19, j=1:13) b(i,j) = real(i*j)\n"
                          "z = a*b + cshift(a, 1, 1) - sqrt(abs(b))\n"
                          "where (a > 0.0)\n"
                          "  z = z + 1.0\n"
                          "end where\n"
                          "end\n";
  cm2::CostModel M = cm2::CostModel::cm5();
  M.NumPEs = 16; // Small machine, same 8-wide node model.
  CompileOptions Opts = CompileOptions::forProfile(Profile::F90Y, M);
  Compilation C(Opts);
  ASSERT_TRUE(C.compile(Src)) << C.diags().str();

  DiagnosticEngine IDiags;
  interp::Interpreter Interp(IDiags);
  ASSERT_TRUE(Interp.run(C.artifacts().RawNIR)) << IDiags.str();

  Execution Exec(M);
  auto Report = Exec.run(C.artifacts().Compiled.Program);
  ASSERT_TRUE(Report.has_value()) << Exec.diags().str();
  EXPECT_LT(maxError(Exec, Interp, "z"), 1e-9);
}

TEST(Cm5Test, SixteenRegistersReduceSpills) {
  // A pressure expression that spills on 8 registers must spill less (or
  // not at all) on the CM/5's 16.
  std::string Src = "program p\nreal z(64)\n";
  std::string Expr;
  for (int I = 1; I <= 10; ++I) {
    Src += "real a" + std::to_string(I) + "(64), b" + std::to_string(I) +
           "(64)\n";
  }
  for (int I = 1; I <= 10; ++I) {
    Src += "a" + std::to_string(I) + " = 1.0\n";
    Src += "b" + std::to_string(I) + " = 2.0\n";
    Expr += "(a" + std::to_string(I) + " + b" + std::to_string(I) + ")";
    if (I != 10)
      Expr += " * (";
  }
  Expr += std::string(9, ')');
  Src += "z = " + Expr + "\nend\n";

  auto SpillsUnder = [&](cm2::CostModel M) {
    CompileOptions Opts = CompileOptions::forProfile(Profile::F90Y, M);
    Opts.Transforms.Blocking = false;
    // Fusion would fold the single-use a*/b* fields into constants and
    // deflate the register pressure this test exists to create.
    Opts.Transforms.Fusion = false;
    Compilation C(Opts);
    EXPECT_TRUE(C.compile(Src)) << C.diags().str();
    unsigned Max = 0;
    for (const peac::Routine &R : C.artifacts().Compiled.Program.Routines)
      Max = R.NumSpillSlots > Max ? R.NumSpillSlots : Max;
    return Max;
  };

  unsigned Cm2Spills = SpillsUnder(cm2::CostModel{});
  unsigned Cm5Spills = SpillsUnder(cm2::CostModel::cm5());
  EXPECT_GT(Cm2Spills, 0u);
  EXPECT_LT(Cm5Spills, Cm2Spills);
}

TEST(Cm5Test, SameSpecificationCompilesForBothMachines) {
  std::string Src = sweSource(32, 1);
  Compilation A(CompileOptions::forProfile(Profile::F90Y,
                                           cm2::CostModel{}));
  Compilation B(CompileOptions::forProfile(Profile::F90Y,
                                           cm2::CostModel::cm5()));
  ASSERT_TRUE(A.compile(Src)) << A.diags().str();
  ASSERT_TRUE(B.compile(Src)) << B.diags().str();
  // Identical phase structure: the same number of node routines.
  EXPECT_EQ(A.artifacts().Compiled.Program.Routines.size(),
            B.artifacts().Compiled.Program.Routines.size());
}

TEST(Cm5Test, Cm5RunsSweFasterThanCm2) {
  std::string Src = sweSource(64, 2);
  auto TimeOn = [&](cm2::CostModel M) {
    CompileOptions Opts = CompileOptions::forProfile(Profile::F90Y, M);
    Compilation C(Opts);
    EXPECT_TRUE(C.compile(Src)) << C.diags().str();
    Execution Exec(M);
    auto Report = Exec.run(C.artifacts().Compiled.Program);
    EXPECT_TRUE(Report.has_value());
    return Report->seconds();
  };
  double Cm2Time = TimeOn(cm2::CostModel{});
  double Cm5Time = TimeOn(cm2::CostModel::cm5());
  EXPECT_LT(Cm5Time, Cm2Time);
}

TEST(Cm5Test, Cm5ResultsMatchCm2Results) {
  // Machine descriptions must not change semantics.
  std::string Src = sweSource(24, 2);
  auto FinalP = [&](cm2::CostModel M) {
    CompileOptions Opts = CompileOptions::forProfile(Profile::F90Y, M);
    Compilation C(Opts);
    EXPECT_TRUE(C.compile(Src)) << C.diags().str();
    Execution Exec(M);
    auto Report = Exec.run(C.artifacts().Compiled.Program);
    EXPECT_TRUE(Report.has_value());
    int H = Exec.executor().fieldHandle("p");
    return Exec.runtime().reduce(runtime::ReduceOp::Sum, H);
  };
  EXPECT_NEAR(FinalP(cm2::CostModel{}), FinalP(cm2::CostModel::cm5()),
              1e-6);
}

} // namespace
