//===- tests/comm_schedule_test.cpp - comm scheduling pass + overlap mode ----===//
//
// Part of the Fortran-90-Y reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The communication scheduling pass (hoist + coalesce) and the f90yc
/// -comm=overlap execution mode built on it. The contract under test:
/// scheduling and split-phase execution change *when* exchanges run and
/// what they cost, never what the program computes - output is
/// bit-identical to the strict synchronous model at every thread count,
/// and under fault injection.
///
//===----------------------------------------------------------------------===//

#include "driver/Driver.h"
#include "host/Printer.h"
#include "observe/Metrics.h"

#include <gtest/gtest.h>

#include <memory>

using namespace f90y;
using namespace f90y::driver;

namespace {

cm2::CostModel machine() {
  cm2::CostModel C;
  C.NumPEs = 64;
  return C;
}

/// Compiles \p Src with or without the comm-schedule pass.
std::unique_ptr<Compilation> compiled(const std::string &Src, bool Schedule) {
  CompileOptions Opts = CompileOptions::forProfile(Profile::F90Y, machine());
  Opts.Transforms.CommSchedule = Schedule;
  auto C = std::make_unique<Compilation>(std::move(Opts));
  EXPECT_TRUE(C->compile(Src)) << C->diags().str();
  return C;
}

RunReport runWith(const Compilation &C, ExecutionOptions EOpts) {
  Execution Exec(machine(), EOpts);
  auto Rep = Exec.run(C.artifacts().Compiled.Program);
  EXPECT_TRUE(Rep.has_value()) << Exec.diags().str();
  return Rep ? *Rep : RunReport{};
}

/// A stencil with four same-axis shifts of one field and an independent
/// different-shape computation for the exchanges to hide under.
const char *stencilSource() {
  return "program p\n"
         "integer i\n"
         "real u(64), a(64), b(64), c(64), d(64), q(48,48), r(48,48)\n"
         "u = 3.0\n"
         "q = 0.5\n"
         "do i = 1, 4\n"
         "  a = cshift(u, 1, 1)\n"
         "  b = cshift(u, -1, 1)\n"
         "  c = cshift(u, 2, 1)\n"
         "  d = cshift(u, -2, 1)\n"
         "  r = q*q + 2.0*q + q/3.0\n"
         "  u = 0.25*(a + b + c + d) + 0.01\n"
         "  q = r - 0.25\n"
         "end do\n"
         "print *, sum(u)\n"
         "print *, sum(q)\n"
         "end\n";
}

TEST(CommScheduleTest, PassCoalescesShiftsIntoMultiShift) {
  auto C = compiled(stencilSource(), /*Schedule=*/true);
  std::string IR = host::printHostProgram(C->artifacts().Compiled.Program);
  // The four same-source same-axis shifts become one multi-shift exchange.
  EXPECT_NE(IR.find("cm_mshift"), std::string::npos) << IR;
}

TEST(CommScheduleTest, SyncPipelineNeverSeesMultiShift) {
  auto C = compiled(stencilSource(), /*Schedule=*/false);
  std::string IR = host::printHostProgram(C->artifacts().Compiled.Program);
  EXPECT_EQ(IR.find("cm_mshift"), std::string::npos) << IR;
}

TEST(CommScheduleTest, OverlapModeIsBitIdenticalToSyncAcrossThreads) {
  // The full -comm=sync vs -comm=overlap comparison, at one host thread
  // and at eight: same printed output, same node work, cheaper or equal
  // total time with overlap.
  auto Sync = compiled(stencilSource(), false);
  auto Sched = compiled(stencilSource(), true);
  for (unsigned Threads : {1u, 8u}) {
    ExecutionOptions SyncOpts;
    SyncOpts.Threads = Threads;
    RunReport S = runWith(*Sync, SyncOpts);

    ExecutionOptions OvOpts;
    OvOpts.Threads = Threads;
    OvOpts.OverlapComm = true;
    RunReport O = runWith(*Sched, OvOpts);

    EXPECT_EQ(S.Output, O.Output) << "threads=" << Threads;
    EXPECT_EQ(S.Ledger.Flops, O.Ledger.Flops);
    EXPECT_DOUBLE_EQ(S.Ledger.NodeCycles, O.Ledger.NodeCycles);
    EXPECT_LE(O.Ledger.total(), S.Ledger.total());
    EXPECT_GT(O.Ledger.OverlappedCycles, 0.0);
    EXPECT_LE(O.Ledger.OverlappedCycles, O.Ledger.CommCycles);
  }
}

TEST(CommScheduleTest, OverlapModeIsDeterministicAcrossThreads) {
  auto Sched = compiled(stencilSource(), true);
  ExecutionOptions One;
  One.Threads = 1;
  One.OverlapComm = true;
  ExecutionOptions Eight;
  Eight.Threads = 8;
  Eight.OverlapComm = true;
  RunReport A = runWith(*Sched, One);
  RunReport B = runWith(*Sched, Eight);
  EXPECT_EQ(A.Output, B.Output);
  EXPECT_DOUBLE_EQ(A.Ledger.total(), B.Ledger.total());
  EXPECT_DOUBLE_EQ(A.Ledger.OverlappedCycles, B.Ledger.OverlappedCycles);
}

TEST(CommScheduleTest, VariedProgramsMatchSyncOutputs) {
  // A spread of shapes: eoshift clauses, mixed axes (only same-axis runs
  // coalesce), aliased updates, transpose and reduction consumers.
  const char *Programs[] = {
      "program p\n"
      "real u(32), a(32), b(32)\n"
      "u = 1.0\n"
      "a = eoshift(u, 1, 1)\n"
      "b = eoshift(u, -3, 1)\n"
      "u = a + b\n"
      "print *, sum(u)\n"
      "end\n",
      "program p\n"
      "real m(16,16), x(16,16), y(16,16), s\n"
      "m = 2.0\n"
      "x = cshift(m, 1, 1)\n"
      "y = cshift(m, 1, 2)\n"
      "s = sum(x - y)\n"
      "print *, s\n"
      "end\n",
      "program p\n"
      "integer t\n"
      "real u(40), v(40)\n"
      "u = 5.0\n"
      "do t = 1, 3\n"
      "  v = cshift(u, 1, 1)\n"
      "  u = cshift(u, -1, 1)\n"
      "  u = u + v\n"
      "end do\n"
      "print *, sum(u)\n"
      "end\n",
  };
  for (const char *Src : Programs) {
    auto Sync = compiled(Src, false);
    auto Sched = compiled(Src, true);
    RunReport S = runWith(*Sync, ExecutionOptions{});
    ExecutionOptions OvOpts;
    OvOpts.OverlapComm = true;
    RunReport O = runWith(*Sched, OvOpts);
    EXPECT_EQ(S.Output, O.Output) << Src;
    EXPECT_DOUBLE_EQ(S.Ledger.NodeCycles, O.Ledger.NodeCycles) << Src;
    EXPECT_LE(O.Ledger.total(), S.Ledger.total()) << Src;
  }
}

TEST(CommScheduleTest, MetricsReportCoalescingAndOverlap) {
  auto Sched = compiled(stencilSource(), true);
  observe::MetricsRegistry Metrics;
  ExecutionOptions EOpts;
  EOpts.OverlapComm = true;
  EOpts.Metrics = &Metrics;
  runWith(*Sched, EOpts);
  // 4 shifts -> 1 exchange, 3 startups saved, per loop iteration.
  EXPECT_DOUBLE_EQ(Metrics.value("comm.coalesced"), 12.0);
  EXPECT_GT(Metrics.value("comm.overlapped_cycles"), 0.0);
  EXPECT_GT(Metrics.value("comm.multi-shift.ops"), 0.0);
}

TEST(CommScheduleTest, FaultedCoalescedExchangeStillMatchesSync) {
  // The coalesced exchange under transient drops and corruption must
  // retry / roll back exactly like its unfused parts: the output matches
  // a fault-free synchronous run bit for bit.
  auto Sync = compiled(stencilSource(), false);
  auto Sched = compiled(stencilSource(), true);
  RunReport Clean = runWith(*Sync, ExecutionOptions{});

  ExecutionOptions Faulty;
  Faulty.OverlapComm = true;
  std::string Error;
  ASSERT_TRUE(support::FaultSpec::parse("grid-timeout:0.3,corrupt:0.3",
                                        Faulty.Faults, Error))
      << Error;
  Faulty.FaultSeed = 11;
  RunReport F = runWith(*Sched, Faulty);
  EXPECT_EQ(Clean.Output, F.Output);
  EXPECT_GT(F.Faults.totalInjected(), 0u);
  // Recovery costs cycles; it never changes answers. The baseline here is
  // the fault-free *scheduled* run - the faulted one repeats exchanges.
  ExecutionOptions CleanOv;
  CleanOv.OverlapComm = true;
  RunReport CleanSched = runWith(*Sched, CleanOv);
  EXPECT_EQ(Clean.Output, CleanSched.Output);
  EXPECT_GT(F.Ledger.CommCycles, CleanSched.Ledger.CommCycles);
}

} // namespace
