//===- tests/driver_test.cpp - end-to-end driver and workload tests ---------===//
//
// Part of the Fortran-90-Y reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Full-pipeline tests on the paper's workloads: SWE compiles and runs on
/// the simulated CM/2 with results matching the reference interpreter; the
/// fieldwise baseline agrees functionally; profiles order as the paper's
/// performance story requires (naive <= CMF-style <= F90-Y in generated
/// code quality); and cycle ledgers are self-consistent.
///
//===----------------------------------------------------------------------===//

#include "baselines/Fieldwise.h"
#include "driver/Driver.h"
#include "driver/Workloads.h"
#include "interp/Interpreter.h"

#include <gtest/gtest.h>

using namespace f90y;
using namespace f90y::driver;

namespace {

cm2::CostModel machineWith(unsigned PEs) {
  cm2::CostModel C;
  C.NumPEs = PEs;
  return C;
}

/// Maximum |machine - reference| over the named array.
double maxArrayError(Execution &Exec, const interp::Interpreter &Interp,
                     const std::string &Name) {
  const interp::ArrayStorage *Ref = Interp.getArray(Name);
  int Handle = Exec.executor().fieldHandle(Name);
  EXPECT_NE(Ref, nullptr);
  EXPECT_GE(Handle, 0);
  if (!Ref || Handle < 0)
    return 1e300;
  const runtime::PeArray &Got = Exec.runtime().field(Handle);
  double MaxErr = 0;
  std::vector<int64_t> Pos(Ref->Extents.size(), 0);
  bool Done = false;
  while (!Done) {
    int64_t PE, Off;
    Got.Geo->locate(Pos, PE, Off);
    double E = std::abs(Got.peBase(PE)[Off] -
                        Ref->Data[Ref->linearIndex(Pos)].asReal());
    MaxErr = E > MaxErr ? E : MaxErr;
    size_t K = Pos.size();
    Done = true;
    while (K-- > 0) {
      if (++Pos[K] < Ref->Extents[K].size()) {
        Done = false;
        break;
      }
      Pos[K] = 0;
    }
  }
  return MaxErr;
}

TEST(DriverTest, SweCompilesAndMatchesReference) {
  std::string Src = sweSource(/*N=*/16, /*Steps=*/3);
  CompileOptions Opts =
      CompileOptions::forProfile(Profile::F90Y, machineWith(16));
  Compilation C(Opts);
  ASSERT_TRUE(C.compile(Src)) << C.diags().str();

  DiagnosticEngine IDiags;
  interp::Interpreter Interp(IDiags);
  ASSERT_TRUE(Interp.run(C.artifacts().RawNIR)) << IDiags.str();

  Execution Exec(Opts.Costs);
  auto Report = Exec.run(C.artifacts().Compiled.Program);
  ASSERT_TRUE(Report.has_value()) << Exec.diags().str();

  // SWE fields are O(1e4); allow relative rounding effects only.
  for (const char *Name : {"u", "v", "p", "z", "h", "cu", "cv"})
    EXPECT_LT(maxArrayError(Exec, Interp, Name), 1e-6) << Name;

  // The machine did real floating work and charged real time.
  EXPECT_GT(Report->Ledger.Flops, 0u);
  EXPECT_GT(Report->Ledger.NodeCycles, 0.0);
  EXPECT_GT(Report->Ledger.CommCycles, 0.0);
  EXPECT_GT(Report->Ledger.CallCycles, 0.0);
  EXPECT_GT(Report->gflops(), 0.0);
}

TEST(DriverTest, SweProfilesAgreeFunctionally) {
  std::string Src = sweSource(12, 2);
  DiagnosticEngine IDiags;

  for (Profile P : {Profile::F90Y, Profile::CMFStyle, Profile::Naive}) {
    SCOPED_TRACE(static_cast<int>(P));
    CompileOptions Opts = CompileOptions::forProfile(P, machineWith(8));
    Compilation C(Opts);
    ASSERT_TRUE(C.compile(Src)) << C.diags().str();
    interp::Interpreter Interp(IDiags);
    ASSERT_TRUE(Interp.run(C.artifacts().RawNIR)) << IDiags.str();
    Execution Exec(Opts.Costs);
    auto Report = Exec.run(C.artifacts().Compiled.Program);
    ASSERT_TRUE(Report.has_value()) << Exec.diags().str();
    EXPECT_LT(maxArrayError(Exec, Interp, "p"), 1e-6);
  }
}

TEST(DriverTest, BlockingReducesCallOverhead) {
  // With identical machine and node options, domain blocking must reduce
  // PEAC dispatch (CallCycles) — the paper's central performance claim.
  std::string Src = sweSource(16, 2);
  CompileOptions Blocked =
      CompileOptions::forProfile(Profile::F90Y, machineWith(16));
  CompileOptions PerStmt =
      CompileOptions::forProfile(Profile::CMFStyle, machineWith(16));

  Compilation CB(Blocked), CP(PerStmt);
  ASSERT_TRUE(CB.compile(Src)) << CB.diags().str();
  ASSERT_TRUE(CP.compile(Src)) << CP.diags().str();
  EXPECT_LT(CB.artifacts().Compiled.Program.Routines.size(),
            CP.artifacts().Compiled.Program.Routines.size());

  Execution EB(Blocked.Costs), EP(PerStmt.Costs);
  auto RB = EB.run(CB.artifacts().Compiled.Program);
  auto RP = EP.run(CP.artifacts().Compiled.Program);
  ASSERT_TRUE(RB && RP);
  EXPECT_LT(RB->Ledger.CallCycles, RP->Ledger.CallCycles);
  EXPECT_LE(RB->Ledger.total(), RP->Ledger.total());
}

TEST(DriverTest, NaiveNodeCodeIsSlower) {
  std::string Src = sweSource(16, 2);
  CompileOptions Opt =
      CompileOptions::forProfile(Profile::F90Y, machineWith(16));
  CompileOptions Naive =
      CompileOptions::forProfile(Profile::Naive, machineWith(16));
  Compilation CO(Opt), CN(Naive);
  ASSERT_TRUE(CO.compile(Src)) << CO.diags().str();
  ASSERT_TRUE(CN.compile(Src)) << CN.diags().str();
  Execution EO(Opt.Costs), EN(Naive.Costs);
  auto RO = EO.run(CO.artifacts().Compiled.Program);
  auto RN = EN.run(CN.artifacts().Compiled.Program);
  ASSERT_TRUE(RO && RN);
  EXPECT_LT(RO->Ledger.NodeCycles, RN->Ledger.NodeCycles);
}

TEST(DriverTest, FieldwiseBaselineMatchesFunctionally) {
  std::string Src = sweSource(12, 2);
  CompileOptions Opts =
      CompileOptions::forProfile(Profile::F90Y, machineWith(8));
  Compilation C(Opts);
  ASSERT_TRUE(C.compile(Src)) << C.diags().str();

  DiagnosticEngine FDiags;
  baselines::FieldwiseReport FW =
      baselines::runFieldwise(C.artifacts().RawNIR, Opts.Costs, FDiags);
  ASSERT_TRUE(FW.OK) << FDiags.str();
  EXPECT_TRUE(FW.Timeable);
  EXPECT_GT(FW.Cycles, 0.0);
  EXPECT_GT(FW.Flops, 0u);
  EXPECT_GT(FW.gflops(Opts.Costs), 0.0);
}

TEST(DriverTest, FieldwiseWhileIsUntimeable) {
  CompileOptions Opts = CompileOptions::forProfile(Profile::F90Y);
  Compilation C(Opts);
  ASSERT_TRUE(C.compile("program p\n"
                        "integer n\n"
                        "n = 12\n"
                        "do while (n > 1)\n"
                        "  n = n / 2\n"
                        "end do\n"
                        "end\n"))
      << C.diags().str();
  DiagnosticEngine FDiags;
  baselines::FieldwiseReport FW =
      baselines::runFieldwise(C.artifacts().RawNIR, Opts.Costs, FDiags);
  EXPECT_TRUE(FW.OK);
  EXPECT_FALSE(FW.Timeable);
}

TEST(DriverTest, HeatWorkloadRunsOnAllProfiles) {
  std::string Src = heatSource(16, 4);
  DiagnosticEngine IDiags;
  interp::Interpreter Interp(IDiags);

  for (Profile P : {Profile::F90Y, Profile::CMFStyle, Profile::Naive}) {
    CompileOptions Opts = CompileOptions::forProfile(P, machineWith(16));
    Compilation C(Opts);
    ASSERT_TRUE(C.compile(Src)) << C.diags().str();
    ASSERT_TRUE(Interp.run(C.artifacts().RawNIR)) << IDiags.str();
    Execution Exec(Opts.Costs);
    auto Report = Exec.run(C.artifacts().Compiled.Program);
    ASSERT_TRUE(Report.has_value()) << Exec.diags().str();
    EXPECT_LT(maxArrayError(Exec, Interp, "u"), 1e-9);
  }
}

TEST(DriverTest, Figure9And10WorkloadsCompile) {
  for (const std::string &Src : {figure9Source(), figure10Source(),
                                 figure12Source(16)}) {
    CompileOptions Opts =
        CompileOptions::forProfile(Profile::F90Y, machineWith(8));
    Compilation C(Opts);
    ASSERT_TRUE(C.compile(Src)) << C.diags().str();
    Execution Exec(Opts.Costs);
    auto Report = Exec.run(C.artifacts().Compiled.Program);
    ASSERT_TRUE(Report.has_value()) << Exec.diags().str();
  }
}

TEST(DriverTest, Figure12ListingHasPaperStructure) {
  CompileOptions Opts =
      CompileOptions::forProfile(Profile::F90Y, machineWith(8));
  Compilation C(Opts);
  ASSERT_TRUE(C.compile(figure12Source(16))) << C.diags().str();
  std::string Listing = C.artifacts().Compiled.peacListing();
  // The z-statement routine uses subtract, multiply (by the fsdx/fsdy
  // scalars), divide, and a chained operand, closing with jnz — the
  // structural elements of the paper's Figure 12.
  EXPECT_NE(Listing.find("fsubv"), std::string::npos) << Listing;
  EXPECT_NE(Listing.find("fmulv aS"), std::string::npos) << Listing;
  EXPECT_NE(Listing.find("fdivv"), std::string::npos) << Listing;
  EXPECT_NE(Listing.find("]1++"), std::string::npos) << Listing;
  EXPECT_NE(Listing.find("jnz ac2"), std::string::npos) << Listing;
}

TEST(DriverTest, LedgerCategoriesAreConsistent) {
  std::string Src = sweSource(16, 2);
  CompileOptions Opts =
      CompileOptions::forProfile(Profile::F90Y, machineWith(16));
  Compilation C(Opts);
  ASSERT_TRUE(C.compile(Src)) << C.diags().str();
  Execution Exec(Opts.Costs);
  auto Report = Exec.run(C.artifacts().Compiled.Program);
  ASSERT_TRUE(Report.has_value());
  const runtime::CycleLedger &L = Report->Ledger;
  EXPECT_DOUBLE_EQ(L.total(), L.NodeCycles + L.CallCycles + L.CommCycles +
                                  L.HostCycles);
  EXPECT_GT(Report->seconds(), 0.0);
}

TEST(DriverTest, RuntimeFailureYieldsNulloptAndDiagnostics) {
  // The subscript is only known at run time, so this compiles cleanly and
  // fails inside the simulated machine - the failure must surface as a
  // structured diagnostic on the Execution, not an abort.
  const char *Src = "program oob\n"
                    "integer, parameter :: n = 4\n"
                    "real a(n,n)\n"
                    "real s\n"
                    "integer i\n"
                    "a = 1.0\n"
                    "i = 37\n"
                    "s = a(i,1)\n"
                    "print *, s\n"
                    "end program oob\n";
  Compilation C(CompileOptions::forProfile(Profile::F90Y, machineWith(16)));
  ASSERT_TRUE(C.compile(Src)) << C.diags().str();
  EXPECT_FALSE(C.diags().hasErrors());

  Execution Exec(machineWith(16));
  auto Report = Exec.run(C.artifacts().Compiled.Program);
  EXPECT_FALSE(Report.has_value());
  EXPECT_TRUE(Exec.diags().hasErrors());
  EXPECT_NE(Exec.diags().str().find("out of bounds"), std::string::npos)
      << Exec.diags().str();
}

TEST(DriverTest, GflopsForUsesExternalFlopCount) {
  RunReport R;
  R.Ledger.NodeCycles = 7e6; // Exactly one second at 7 MHz.
  R.Ledger.Flops = 123;
  R.ClockMHz = 7.0;
  EXPECT_DOUBLE_EQ(R.seconds(), 1.0);
  EXPECT_DOUBLE_EQ(R.gflopsFor(2e9), 2.0);
}

} // namespace
