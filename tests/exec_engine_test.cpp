//===- tests/exec_engine_test.cpp - interp vs compiled engine equivalence ---===//
//
// Part of the Fortran-90-Y reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compiled PEAC execution engine's contract (peac/Engine.h): for any
/// routine, it is bit-identical to the reference interpreter - subgrid
/// memory byte for byte, flops, and the cycle account - at every host
/// thread count, fault schedules included. Exercised by a randomized
/// property test over all opcodes, every operand form (mem/vreg/sreg/imm,
/// spill slots, strided and aliased memory), zero divisors, and odd
/// subgrid extents forcing masked tails; plus directed tests of the
/// routine cache (compile-once, fingerprint invalidation) and whole
/// compiled programs under -exec=interp vs -exec=compiled.
///
//===----------------------------------------------------------------------===//

#include "driver/Driver.h"
#include "observe/Metrics.h"
#include "peac/Engine.h"
#include "peac/Executor.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <cstring>
#include <fstream>
#include <random>
#include <sstream>

using namespace f90y;
using namespace f90y::peac;

namespace {

//===--------------------------------------------------------------------===//
// Randomized routine equivalence
//===--------------------------------------------------------------------===//

/// One randomly generated dispatch: a routine plus the storage and
/// argument bindings to run it against. Buffers hold the pristine input
/// state; every run starts from a fresh copy.
struct RandomCase {
  Routine R;
  unsigned NumPEs = 1;
  int64_t SubgridElems = 1;
  size_t PEStride = 0;
  std::vector<unsigned> PtrBuf; ///< Buffer index per pointer arg (aliasing).
  std::vector<std::vector<double>> Buffers;
  std::vector<double> Scalars;
};

unsigned canonicalArity(Opcode Op) {
  switch (Op) {
  case Opcode::FMAddV:
  case Opcode::FSelV:
    return 3;
  case Opcode::FLodV:
  case Opcode::FStrV:
  case Opcode::FMovV:
  case Opcode::FNegV:
  case Opcode::FAbsV:
  case Opcode::FSqrtV:
  case Opcode::FSinV:
  case Opcode::FCosV:
  case Opcode::FTanV:
  case Opcode::FExpV:
  case Opcode::FLogV:
  case Opcode::FTrncV:
  case Opcode::FNotV:
    return 1;
  default:
    return 2;
  }
}

RandomCase makeCase(std::mt19937_64 &Rng, const cm2::CostModel &Costs) {
  auto Pick = [&](int Lo, int Hi) {
    return std::uniform_int_distribution<int>(Lo, Hi)(Rng);
  };

  RandomCase C;
  C.R.Name = "rand";
  C.R.NumPtrArgs = static_cast<unsigned>(Pick(1, 3));
  C.R.NumScalarArgs = 2;
  C.R.NumSpillSlots = static_cast<unsigned>(Pick(0, 2));
  C.NumPEs = static_cast<unsigned>(Pick(1, 6));
  C.SubgridElems = Pick(1, 20); // Odd extents force masked tails.

  // Worst-case addressable extent: offset <= 2, stride <= 2, at most
  // ceil(20/4)*4 = 20 padded elements. Sized so PE subgrids never
  // overlap (the executor's data-parallel contract).
  C.PEStride = 48;

  // Fewer distinct buffers than pointer args sometimes aliases two args
  // to one array, exercising read-before-write across operands.
  const unsigned NumBuffers = static_cast<unsigned>(
      Pick(1, static_cast<int>(C.R.NumPtrArgs)));
  for (unsigned P = 0; P < C.R.NumPtrArgs; ++P)
    C.PtrBuf.push_back(static_cast<unsigned>(Pick(0, NumBuffers - 1)));

  // Every element initialized (reads of tail padding are defined and
  // identical across engines); ~1 in 6 values is exactly zero so FDivV /
  // FModV hit IEEE zero-divisor lanes.
  std::uniform_real_distribution<double> Val(-8.0, 8.0);
  for (unsigned B = 0; B < NumBuffers; ++B) {
    std::vector<double> Buf(static_cast<size_t>(C.NumPEs) * C.PEStride);
    for (double &V : Buf)
      V = Pick(0, 5) == 0 ? 0.0 : Val(Rng);
    C.Buffers.push_back(std::move(Buf));
  }
  C.Scalars = {Val(Rng), Pick(0, 2) == 0 ? 0.0 : Val(Rng)};

  const unsigned MemRegs = C.R.NumPtrArgs + C.R.NumSpillSlots;
  auto RandomOperand = [&]() {
    switch (Pick(0, 9)) {
    case 0:
    case 1:
    case 2:
    case 3: // Mem (real or spill).
      return Operand::mem(static_cast<unsigned>(Pick(0, MemRegs - 1)),
                          /*Offset=*/Pick(0, 2),
                          /*Stride=*/Pick(0, 9) == 0 ? 0 : Pick(1, 2));
    case 4:
    case 5:
    case 6: // VReg.
      return Operand::vreg(static_cast<unsigned>(
          Pick(0, static_cast<int>(Costs.VectorRegs) - 1)));
    case 7:
    case 8: // SReg.
      return Operand::sreg(static_cast<unsigned>(Pick(0, 1)));
    default: // Imm.
      return Operand::imm(Pick(0, 4) == 0 ? 0.0 : Val(Rng));
    }
  };

  const int BodyLen = Pick(3, 14);
  for (int I = 0; I < BodyLen; ++I) {
    Instruction Ins;
    Ins.Op = static_cast<Opcode>(
        Pick(0, static_cast<int>(Opcode::FSelV)));
    // Mostly the canonical arity, sometimes over- or under-supplied
    // sources (missing ones read as zero; extras are ignored).
    const unsigned NSrcs = Pick(0, 4) == 0
                               ? static_cast<unsigned>(Pick(0, 3))
                               : canonicalArity(Ins.Op);
    for (unsigned S = 0; S < NSrcs; ++S)
      Ins.Srcs.push_back(RandomOperand());
    if (Pick(0, 9) < 3) {
      Ins.HasMemDst = true;
      Ins.MemDst =
          Operand::mem(static_cast<unsigned>(Pick(0, MemRegs - 1)),
                       Pick(0, 2), Pick(0, 9) == 0 ? 0 : Pick(1, 2));
    } else {
      Ins.DstVReg = static_cast<unsigned>(
          Pick(0, static_cast<int>(Costs.VectorRegs) - 1));
    }
    C.R.Body.push_back(Ins);
  }

  // Always end with a real-memory store so the run's effect is visible
  // in subgrid memory.
  Instruction Store;
  Store.Op = Opcode::FStrV;
  Store.Srcs = {Operand::vreg(0)};
  Store.HasMemDst = true;
  Store.MemDst = Operand::mem(
      static_cast<unsigned>(Pick(0, static_cast<int>(C.R.NumPtrArgs) - 1)));
  C.R.Body.push_back(Store);
  return C;
}

/// The post-run state of one execution: final buffer bytes + account.
struct RunOut {
  std::vector<std::vector<double>> Mem;
  ExecResult Res;
};

RunOut runCase(const RandomCase &C, const cm2::CostModel &Costs,
               EngineKind Kind, support::ThreadPool *Pool,
               RoutineCache *Cache) {
  RunOut Out;
  Out.Mem = C.Buffers; // Fresh copy of the pristine inputs.
  ExecArgs Args;
  Args.NumPEs = C.NumPEs;
  Args.SubgridElems = C.SubgridElems;
  Args.Scalars = C.Scalars;
  for (unsigned P = 0; P < C.R.NumPtrArgs; ++P)
    Args.Ptrs.push_back({Out.Mem[C.PtrBuf[P]].data(), C.PEStride, 0});
  if (Kind == EngineKind::Interp) {
    Out.Res = peac::execute(C.R, Args, Costs, Pool);
  } else {
    ExecutionEngine Engine(EngineKind::Compiled, Cache);
    Out.Res = Engine.execute(C.R, Args, Costs, Pool);
  }
  return Out;
}

/// Byte comparison (doubles may be NaN; equality on bits is the
/// contract, not IEEE ==).
bool sameBytes(const std::vector<std::vector<double>> &A,
               const std::vector<std::vector<double>> &B) {
  if (A.size() != B.size())
    return false;
  for (size_t I = 0; I < A.size(); ++I) {
    if (A[I].size() != B[I].size())
      return false;
    if (std::memcmp(A[I].data(), B[I].data(),
                    A[I].size() * sizeof(double)) != 0)
      return false;
  }
  return true;
}

TEST(ExecEngineEquivalence, RandomRoutinesMatchInterpreterBitForBit) {
  cm2::CostModel Costs;
  Costs.NumPEs = 8;
  std::mt19937_64 Rng(0xf90d5eed);
  support::ThreadPool Pool(8);
  RoutineCache Cache;

  for (int Case = 0; Case < 60; ++Case) {
    RandomCase C = makeCase(Rng, Costs);
    RunOut Ref = runCase(C, Costs, EngineKind::Interp, nullptr, nullptr);

    struct Variant {
      const char *Name;
      EngineKind Kind;
      support::ThreadPool *Pool;
    } Variants[] = {
        {"interp/threads=8", EngineKind::Interp, &Pool},
        {"compiled/threads=1", EngineKind::Compiled, nullptr},
        {"compiled/threads=8", EngineKind::Compiled, &Pool},
    };
    for (const Variant &V : Variants) {
      RunOut Got = runCase(C, Costs, V.Kind, V.Pool, &Cache);
      EXPECT_TRUE(sameBytes(Ref.Mem, Got.Mem))
          << "case " << Case << " (" << V.Name
          << "): subgrid memory diverged\n"
          << C.R.str();
      EXPECT_EQ(Ref.Res.Flops, Got.Res.Flops) << "case " << Case;
      EXPECT_EQ(Ref.Res.NodeCycles, Got.Res.NodeCycles) << "case " << Case;
      EXPECT_EQ(Ref.Res.CallCycles, Got.Res.CallCycles) << "case " << Case;
    }
  }
}

TEST(ExecEngineEquivalence, ManyPEsSpanMultipleChunks) {
  // Enough PEs that the pool splits the sweep into many chunks; the
  // compiled engine's per-thread scratch must still keep PEs independent.
  cm2::CostModel Costs;
  std::mt19937_64 Rng(77);
  support::ThreadPool Pool(8);
  RoutineCache Cache;
  for (int Case = 0; Case < 6; ++Case) {
    RandomCase C = makeCase(Rng, Costs);
    C.NumPEs = 150;
    for (auto &Buf : C.Buffers) {
      Buf.resize(static_cast<size_t>(C.NumPEs) * C.PEStride);
      std::mt19937_64 Fill(Case * 1000 + 17);
      std::uniform_real_distribution<double> Val(-4.0, 4.0);
      for (double &V : Buf)
        V = Val(Fill);
    }
    RunOut Ref = runCase(C, Costs, EngineKind::Interp, nullptr, nullptr);
    RunOut Got = runCase(C, Costs, EngineKind::Compiled, &Pool, &Cache);
    EXPECT_TRUE(sameBytes(Ref.Mem, Got.Mem)) << C.R.str();
    EXPECT_EQ(Ref.Res.Flops, Got.Res.Flops);
  }
}

//===--------------------------------------------------------------------===//
// Scratch sizing
//===--------------------------------------------------------------------===//

TEST(ScratchUse, ScansRegistersSpillSlotsAndScalars) {
  Routine R;
  R.NumPtrArgs = 2;
  R.NumSpillSlots = 3;
  Instruction I;
  I.Op = Opcode::FMAddV;
  I.Srcs = {Operand::vreg(5), Operand::sreg(3), Operand::mem(1)};
  I.DstVReg = 2;
  R.Body.push_back(I);
  Instruction Sp;
  Sp.Op = Opcode::FStrV;
  Sp.Srcs = {Operand::vreg(0)};
  Sp.HasMemDst = true;
  Sp.MemDst = Operand::mem(4); // Spill slot 2 (4 - NumPtrArgs).
  R.Body.push_back(Sp);

  ScratchUse Use = R.scratchUse();
  EXPECT_EQ(Use.VRegs, 6u);      // aV5 is the max referenced.
  EXPECT_EQ(Use.ScalarArgs, 4u); // aS3.
  EXPECT_EQ(Use.SpillSlots, 3u); // Slot 2.
}

TEST(ScratchUse, EmptyRoutineUsesNothing) {
  Routine R;
  ScratchUse Use = R.scratchUse();
  EXPECT_EQ(Use.VRegs, 0u);
  EXPECT_EQ(Use.ScalarArgs, 0u);
  EXPECT_EQ(Use.SpillSlots, 0u);
}

//===--------------------------------------------------------------------===//
// Routine cache
//===--------------------------------------------------------------------===//

/// z = x + K over 2 PEs; small enough to eyeball.
RandomCase addCase(double K) {
  RandomCase C;
  C.R.Name = "addk";
  C.R.NumPtrArgs = 2;
  C.NumPEs = 2;
  C.SubgridElems = 5;
  C.PEStride = 8;
  Instruction Load;
  Load.Op = Opcode::FLodV;
  Load.Srcs = {Operand::mem(0)};
  Load.DstVReg = 1;
  C.R.Body.push_back(Load);
  Instruction Add;
  Add.Op = Opcode::FAddV;
  Add.Srcs = {Operand::vreg(1), Operand::imm(K)};
  Add.DstVReg = 2;
  C.R.Body.push_back(Add);
  Instruction Store;
  Store.Op = Opcode::FStrV;
  Store.Srcs = {Operand::vreg(2)};
  Store.HasMemDst = true;
  Store.MemDst = Operand::mem(1);
  C.R.Body.push_back(Store);
  C.PtrBuf = {0, 1};
  C.Buffers.resize(2, std::vector<double>(16, 0.0));
  for (int I = 0; I < 16; ++I)
    C.Buffers[0][static_cast<size_t>(I)] = I;
  return C;
}

TEST(RoutineCache, TimestepLoopCompilesOnce) {
  cm2::CostModel Costs;
  RoutineCache Cache;
  observe::MetricsRegistry Metrics;
  ExecutionEngine Engine(EngineKind::Compiled, &Cache);
  RandomCase C = addCase(1.0);

  for (int Step = 0; Step < 5; ++Step) {
    auto Mem = C.Buffers;
    ExecArgs Args;
    Args.NumPEs = C.NumPEs;
    Args.SubgridElems = C.SubgridElems;
    for (unsigned P = 0; P < C.R.NumPtrArgs; ++P)
      Args.Ptrs.push_back({Mem[P].data(), C.PEStride, 0});
    Engine.execute(C.R, Args, Costs, nullptr, nullptr, &Metrics);
  }

  EXPECT_EQ(Cache.misses(), 1u);
  EXPECT_EQ(Cache.hits(), 4u);
  EXPECT_EQ(Cache.size(), 1u);
  EXPECT_EQ(Metrics.value("peac.engine.cache.misses"), 1u);
  EXPECT_EQ(Metrics.value("peac.engine.cache.hits"), 4u);
}

TEST(RoutineCache, FingerprintCatchesInPlaceMutation) {
  // Same Routine object, body mutated between dispatches: the address
  // matches but the fingerprint must not, so the cache recompiles and
  // the run reflects the new body.
  cm2::CostModel Costs;
  RoutineCache Cache;
  ExecutionEngine Engine(EngineKind::Compiled, &Cache);
  RandomCase C = addCase(1.0);

  auto RunOnce = [&]() {
    auto Mem = C.Buffers;
    ExecArgs Args;
    Args.NumPEs = C.NumPEs;
    Args.SubgridElems = C.SubgridElems;
    for (unsigned P = 0; P < C.R.NumPtrArgs; ++P)
      Args.Ptrs.push_back({Mem[P].data(), C.PEStride, 0});
    Engine.execute(C.R, Args, Costs);
    return Mem[1];
  };

  std::vector<double> First = RunOnce();
  EXPECT_DOUBLE_EQ(First[0], 1.0); // 0 + 1
  C.R.Body[1].Srcs[1] = Operand::imm(10.0);
  std::vector<double> Second = RunOnce();
  EXPECT_DOUBLE_EQ(Second[0], 10.0); // 0 + 10
  EXPECT_EQ(Cache.misses(), 2u);
  EXPECT_EQ(Cache.hits(), 0u);
}

//===--------------------------------------------------------------------===//
// Whole programs: -exec=interp vs -exec=compiled
//===--------------------------------------------------------------------===//

std::string readProgram(const std::string &Name) {
  std::string Path = std::string(F90Y_SOURCE_DIR) + "/examples/programs/" +
                     Name;
  std::ifstream In(Path);
  EXPECT_TRUE(In.good()) << "cannot open " << Path;
  std::ostringstream Buf;
  Buf << In.rdbuf();
  return Buf.str();
}

struct ProgramRun {
  std::string Output;
  runtime::CycleLedger Ledger;
  support::FaultCounters Faults;
  bool Ok = false;
};

ProgramRun runProgram(const host::HostProgram &Program,
                      const cm2::CostModel &Machine, EngineKind Kind,
                      unsigned Threads, const std::string &FaultSpec = "",
                      uint64_t Seed = 0) {
  driver::ExecutionOptions EOpts;
  EOpts.Threads = Threads;
  EOpts.Engine = Kind;
  EOpts.FaultSeed = Seed;
  if (!FaultSpec.empty()) {
    std::string Error;
    EXPECT_TRUE(support::FaultSpec::parse(FaultSpec, EOpts.Faults, Error))
        << Error;
  }
  driver::Execution Exec(Machine, EOpts);
  auto Report = Exec.run(Program);
  ProgramRun R;
  EXPECT_TRUE(Report.has_value()) << Exec.diags().str();
  if (!Report)
    return R;
  R.Ok = true;
  R.Output = Report->Output;
  R.Ledger = Report->Ledger;
  R.Faults = Report->Faults;
  return R;
}

void expectSameRun(const ProgramRun &A, const ProgramRun &B) {
  ASSERT_TRUE(A.Ok);
  ASSERT_TRUE(B.Ok);
  EXPECT_EQ(A.Output, B.Output);
  EXPECT_EQ(A.Ledger.NodeCycles, B.Ledger.NodeCycles);
  EXPECT_EQ(A.Ledger.CallCycles, B.Ledger.CallCycles);
  EXPECT_EQ(A.Ledger.CommCycles, B.Ledger.CommCycles);
  EXPECT_EQ(A.Ledger.HostCycles, B.Ledger.HostCycles);
  EXPECT_EQ(A.Ledger.OverlappedCycles, B.Ledger.OverlappedCycles);
  EXPECT_EQ(A.Ledger.Flops, B.Ledger.Flops);
  EXPECT_TRUE(A.Faults == B.Faults)
      << A.Faults.str() << " vs " << B.Faults.str();
}

class ExecEngineProgramTest : public ::testing::TestWithParam<const char *> {
};

TEST_P(ExecEngineProgramTest, CompiledMatchesInterpAtEveryThreadCount) {
  cm2::CostModel Machine;
  Machine.NumPEs = 256;
  driver::Compilation C(
      driver::CompileOptions::forProfile(driver::Profile::F90Y, Machine));
  ASSERT_TRUE(C.compile(readProgram(GetParam()))) << C.diags().str();
  const host::HostProgram &Program = C.artifacts().Compiled.Program;

  ProgramRun Ref = runProgram(Program, Machine, EngineKind::Interp, 1);
  expectSameRun(Ref, runProgram(Program, Machine, EngineKind::Compiled, 1));
  expectSameRun(Ref, runProgram(Program, Machine, EngineKind::Compiled, 8));
}

TEST_P(ExecEngineProgramTest, FaultSchedulesAreEngineIndependent) {
  // A fired PE trap sweeps the PEs before the faulting one and replays
  // after rollback; the partial stores and the recovery account must be
  // identical under either engine.
  cm2::CostModel Machine;
  Machine.NumPEs = 64;
  driver::Compilation C(
      driver::CompileOptions::forProfile(driver::Profile::F90Y, Machine));
  ASSERT_TRUE(C.compile(readProgram(GetParam()))) << C.diags().str();
  const host::HostProgram &Program = C.artifacts().Compiled.Program;

  const char *Spec = "pe-trap:0.05,fpu:0.05,corrupt:0.03";
  ProgramRun Ref =
      runProgram(Program, Machine, EngineKind::Interp, 1, Spec, 9);
  expectSameRun(
      Ref, runProgram(Program, Machine, EngineKind::Compiled, 1, Spec, 9));
  expectSameRun(
      Ref, runProgram(Program, Machine, EngineKind::Compiled, 8, Spec, 9));
}

INSTANTIATE_TEST_SUITE_P(SamplePrograms, ExecEngineProgramTest,
                         ::testing::Values("fig10.f90", "swe.f90"),
                         [](const ::testing::TestParamInfo<const char *> &I) {
                           std::string Name = I.param;
                           return Name.substr(0, Name.find('.'));
                         });

} // namespace
