//===- tests/fault_injection_test.cpp - deterministic fault injection -------===//
//
// Part of the Fortran-90-Y reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fault-injection determinism contract: a fixed -fault-seed produces
/// one fault schedule - and therefore bit-identical program output, cycle
/// ledger, and recovery counters - at every host thread count; recoverable
/// schedules complete with exactly the fault-free program results; faults
/// that recovery cannot absorb (retries exhausted, simulated OOM, the
/// watchdog) surface as structured diagnostics, not aborts.
///
//===----------------------------------------------------------------------===//

#include "driver/Driver.h"
#include "observe/Metrics.h"
#include "support/FaultInjector.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

using namespace f90y;
using namespace f90y::driver;
using support::FaultCounters;
using support::FaultInjector;
using support::FaultKind;
using support::FaultSpec;

namespace {

cm2::CostModel machine() {
  cm2::CostModel C;
  C.NumPEs = 16;
  return C;
}

/// A program that crosses every faultable path: grid shifts, router
/// transpose, full reductions, PEAC compute blocks, serial time stepping,
/// and PRINT (rendered through the router).
const char *faultyProgram() {
  return "program faulty\n"
         "integer, parameter :: n = 8\n"
         "real a(n,n), b(n,n), c(n,n)\n"
         "real s\n"
         "integer i, j, t\n"
         "forall (i=1:n, j=1:n) a(i,j) = sin(real(i))*real(j)\n"
         "b = cshift(a, 1, 1) + cshift(a, -1, 2)\n"
         "c = transpose(b)\n"
         "s = 0.0\n"
         "do t = 1, 4\n"
         "  a = a + 0.25*(cshift(a,1,1) + cshift(a,-1,1) &\n"
         "      + cshift(a,1,2) + cshift(a,-1,2))\n"
         "  s = s + sum(a)/real(n*n)\n"
         "end do\n"
         "print *, 'checksum:', s, maxval(b), sum(c)\n"
         "end program faulty\n";
}

/// Every recoverable kind; OOM is deliberately excluded (an allocation
/// fault is permanent by design, so it belongs in the failure tests).
const char *recoverableSpec() {
  return "router-drop:0.05,grid-timeout:0.05,corrupt:0.05,"
         "pe-trap:0.05,fpu:0.05";
}

ExecutionOptions optionsFor(const std::string &Spec, uint64_t Seed,
                            unsigned Threads) {
  ExecutionOptions O;
  O.Threads = Threads;
  O.FaultSeed = Seed;
  std::string Error;
  EXPECT_TRUE(FaultSpec::parse(Spec, O.Faults, Error)) << Error;
  return O;
}

/// Everything one run produces that the determinism contract covers.
struct Outcome {
  bool Ok = false;
  std::string Output;
  std::string Diags;
  runtime::CycleLedger Ledger;
  FaultCounters Counters;
  std::vector<double> FinalA; ///< Raw storage of array 'a' post-run.
};

Outcome runProgram(Compilation &C, const ExecutionOptions &EOpts) {
  Execution Exec(machine(), EOpts);
  auto Report = Exec.run(C.artifacts().Compiled.Program);
  Outcome O;
  O.Diags = Exec.diags().str();
  if (!Report)
    return O;
  O.Ok = true;
  O.Output = Report->Output;
  O.Ledger = Report->Ledger;
  O.Counters = Report->Faults;
  int H = Exec.executor().fieldHandle("a");
  if (H >= 0)
    O.FinalA = Exec.runtime().snapshotField(H);
  return O;
}

void expectIdentical(const Outcome &A, const Outcome &B) {
  ASSERT_TRUE(A.Ok) << A.Diags;
  ASSERT_TRUE(B.Ok) << B.Diags;
  EXPECT_EQ(A.Output, B.Output);
  EXPECT_EQ(A.FinalA, B.FinalA);
  EXPECT_EQ(A.Ledger.NodeCycles, B.Ledger.NodeCycles);
  EXPECT_EQ(A.Ledger.CallCycles, B.Ledger.CallCycles);
  EXPECT_EQ(A.Ledger.CommCycles, B.Ledger.CommCycles);
  EXPECT_EQ(A.Ledger.HostCycles, B.Ledger.HostCycles);
  EXPECT_EQ(A.Ledger.Flops, B.Ledger.Flops);
  EXPECT_TRUE(A.Counters == B.Counters)
      << A.Counters.str() << " vs " << B.Counters.str();
}

class FaultInjectionTest : public ::testing::Test {
protected:
  Compilation C{CompileOptions::forProfile(Profile::F90Y, machine())};

  void SetUp() override {
    ASSERT_TRUE(C.compile(faultyProgram())) << C.diags().str();
  }
};

//===----------------------------------------------------------------------===//
// FaultSpec parsing
//===----------------------------------------------------------------------===//

TEST(FaultSpecTest, ParsesSingleEntry) {
  FaultSpec S;
  std::string Error;
  ASSERT_TRUE(FaultSpec::parse("router-drop:0.25", S, Error)) << Error;
  EXPECT_DOUBLE_EQ(S.prob(FaultKind::RouterDrop), 0.25);
  EXPECT_DOUBLE_EQ(S.prob(FaultKind::GridTimeout), 0.0);
  EXPECT_TRUE(S.any());
}

TEST(FaultSpecTest, ParsesMultipleEntriesAndAll) {
  FaultSpec S;
  std::string Error;
  ASSERT_TRUE(FaultSpec::parse("all:0.5,oom:0", S, Error)) << Error;
  EXPECT_DOUBLE_EQ(S.prob(FaultKind::PeTrap), 0.5);
  EXPECT_DOUBLE_EQ(S.prob(FaultKind::Corruption), 0.5);
  EXPECT_DOUBLE_EQ(S.prob(FaultKind::AllocOom), 0.0); // Later wins.
}

TEST(FaultSpecTest, EmptySpecIsZero) {
  FaultSpec S;
  std::string Error;
  ASSERT_TRUE(FaultSpec::parse("", S, Error)) << Error;
  EXPECT_FALSE(S.any());
}

TEST(FaultSpecTest, RejectsMalformedSpecs) {
  FaultSpec S;
  std::string Error;
  EXPECT_FALSE(FaultSpec::parse("router-drop", S, Error));
  EXPECT_NE(Error.find("malformed"), std::string::npos) << Error;
  EXPECT_FALSE(FaultSpec::parse("bogus-kind:0.5", S, Error));
  EXPECT_NE(Error.find("unknown fault kind"), std::string::npos) << Error;
  EXPECT_FALSE(FaultSpec::parse("corrupt:1.5", S, Error));
  EXPECT_FALSE(FaultSpec::parse("corrupt:-0.1", S, Error));
  EXPECT_FALSE(FaultSpec::parse("corrupt:abc", S, Error));
  EXPECT_FALSE(FaultSpec::parse("corrupt:", S, Error));
}

//===----------------------------------------------------------------------===//
// Injector schedule determinism (unit level)
//===----------------------------------------------------------------------===//

TEST(FaultInjectorTest, SameSeedSameSchedule) {
  FaultSpec S;
  std::string Error;
  ASSERT_TRUE(FaultSpec::parse("all:0.3", S, Error));
  FaultInjector A(S, 1234), B(S, 1234);
  for (unsigned K = 0; K < support::NumFaultKinds; ++K)
    for (int I = 0; I < 200; ++I)
      EXPECT_EQ(A.fire(static_cast<FaultKind>(K)),
                B.fire(static_cast<FaultKind>(K)));
  EXPECT_TRUE(A.counters() == B.counters());
  EXPECT_GT(A.counters().totalInjected(), 0u);
}

TEST(FaultInjectorTest, DifferentSeedsDiverge) {
  FaultSpec S;
  std::string Error;
  ASSERT_TRUE(FaultSpec::parse("corrupt:0.3", S, Error));
  FaultInjector A(S, 1), B(S, 2);
  bool Diverged = false;
  for (int I = 0; I < 200; ++I)
    if (A.fire(FaultKind::Corruption) != B.fire(FaultKind::Corruption))
      Diverged = true;
  EXPECT_TRUE(Diverged);
}

TEST(FaultInjectorTest, ZeroProbabilityNeverFires) {
  FaultInjector FI(FaultSpec(), 99);
  for (int I = 0; I < 100; ++I)
    for (unsigned K = 0; K < support::NumFaultKinds; ++K)
      EXPECT_FALSE(FI.fire(static_cast<FaultKind>(K)));
  EXPECT_EQ(FI.counters().totalInjected(), 0u);
}

TEST(FaultInjectorTest, ResetRewindsTheSchedule) {
  FaultSpec S;
  std::string Error;
  ASSERT_TRUE(FaultSpec::parse("pe-trap:0.4", S, Error));
  FaultInjector FI(S, 7);
  std::vector<bool> First;
  for (int I = 0; I < 64; ++I)
    First.push_back(FI.fire(FaultKind::PeTrap));
  FI.reset();
  for (int I = 0; I < 64; ++I)
    EXPECT_EQ(FI.fire(FaultKind::PeTrap), First[static_cast<size_t>(I)]);
}

TEST(FaultInjectorTest, CountersRender) {
  FaultCounters Z;
  EXPECT_EQ(Z.str(),
            "faults {none}, retries 0, rollbacks 0, replays 0");
  Z.Injected[static_cast<unsigned>(FaultKind::RouterDrop)] = 3;
  Z.Retries = 2;
  EXPECT_EQ(Z.str(),
            "faults {router-drop=3}, retries 2, rollbacks 0, replays 0");
}

//===----------------------------------------------------------------------===//
// End-to-end determinism and recovery
//===----------------------------------------------------------------------===//

TEST_F(FaultInjectionTest, NoFaultSpecAttachesNoInjector) {
  Execution Exec(machine(), ExecutionOptions());
  EXPECT_EQ(Exec.faultInjector(), nullptr);
  auto Report = Exec.run(C.artifacts().Compiled.Program);
  ASSERT_TRUE(Report.has_value()) << Exec.diags().str();
  EXPECT_EQ(Report->Faults.totalInjected(), 0u);
}

TEST_F(FaultInjectionTest, RecoverableSchedulePreservesProgramResults) {
  Outcome Clean = runProgram(C, ExecutionOptions());
  Outcome Faulty = runProgram(C, optionsFor(recoverableSpec(), 1, 1));
  ASSERT_TRUE(Clean.Ok) << Clean.Diags;
  ASSERT_TRUE(Faulty.Ok) << Faulty.Diags;
  // Recovery is invisible to the program: identical output and data.
  EXPECT_EQ(Faulty.Output, Clean.Output);
  EXPECT_EQ(Faulty.FinalA, Clean.FinalA);
  // ...but not to the machine: the schedule injected real faults and the
  // ledger carries their recovery cost.
  EXPECT_GT(Faulty.Counters.totalInjected(), 0u) << Faulty.Counters.str();
  EXPECT_GT(Faulty.Ledger.total(), Clean.Ledger.total());
}

TEST_F(FaultInjectionTest, FaultScheduleIsThreadCountInvariant) {
  Outcome T1 = runProgram(C, optionsFor(recoverableSpec(), 42, 1));
  Outcome T8 = runProgram(C, optionsFor(recoverableSpec(), 42, 8));
  EXPECT_GT(T1.Counters.totalInjected(), 0u) << T1.Counters.str();
  expectIdentical(T1, T8);
}

TEST_F(FaultInjectionTest, SameSeedReproducesBitIdentically) {
  Outcome A = runProgram(C, optionsFor(recoverableSpec(), 7, 2));
  Outcome B = runProgram(C, optionsFor(recoverableSpec(), 7, 2));
  expectIdentical(A, B);
}

TEST_F(FaultInjectionTest, FaultScheduleIsEngineInvariant) {
  // Injection decisions are drawn per dispatch on the host thread and PE
  // traps partial-sweep through the engine's own sweep function, so the
  // schedule, the partial stores, and the recovery account are identical
  // under the interpreter and the compiled engine.
  ExecutionOptions Interp = optionsFor(recoverableSpec(), 42, 2);
  Interp.Engine = peac::EngineKind::Interp;
  ExecutionOptions Compiled = optionsFor(recoverableSpec(), 42, 2);
  Compiled.Engine = peac::EngineKind::Compiled;
  Outcome A = runProgram(C, Interp);
  Outcome B = runProgram(C, Compiled);
  EXPECT_GT(A.Counters.totalInjected(), 0u) << A.Counters.str();
  expectIdentical(A, B);
}

TEST_F(FaultInjectionTest, CorruptionRollsBackAndRecovers) {
  Outcome Clean = runProgram(C, ExecutionOptions());
  Outcome Faulty = runProgram(C, optionsFor("corrupt:0.2", 3, 1));
  ASSERT_TRUE(Faulty.Ok) << Faulty.Diags;
  EXPECT_EQ(Faulty.Output, Clean.Output);
  EXPECT_EQ(Faulty.FinalA, Clean.FinalA);
  EXPECT_GT(Faulty.Counters.injected(FaultKind::Corruption), 0u)
      << Faulty.Counters.str();
  EXPECT_GT(Faulty.Counters.Rollbacks, 0u) << Faulty.Counters.str();
}

TEST_F(FaultInjectionTest, PeTrapReplaysDispatchAndRecovers) {
  Outcome Clean = runProgram(C, ExecutionOptions());
  Outcome Faulty = runProgram(C, optionsFor("pe-trap:0.3,fpu:0.3", 5, 1));
  ASSERT_TRUE(Faulty.Ok) << Faulty.Diags;
  EXPECT_EQ(Faulty.Output, Clean.Output);
  EXPECT_EQ(Faulty.FinalA, Clean.FinalA);
  EXPECT_GT(Faulty.Counters.Replays, 0u) << Faulty.Counters.str();
  // Replayed dispatches recharge node time, never flops: the useful-work
  // account matches the fault-free run exactly.
  EXPECT_EQ(Faulty.Ledger.Flops, Clean.Ledger.Flops);
  EXPECT_GT(Faulty.Ledger.NodeCycles, Clean.Ledger.NodeCycles);
}

//===----------------------------------------------------------------------===//
// Faults through fused megakernels
//===----------------------------------------------------------------------===//

/// A program whose timestep body is a chain of single-use elementwise
/// temporaries: the fusion pass folds t0..t7 and the final update into one
/// MOVE, so a PE trap or corruption now lands inside a megakernel whose
/// rollback/replay granule covers the whole fused chain.
const char *fusedChainProgram() {
  return "program fchain\n"
         "integer, parameter :: n = 8\n"
         "real a(n,n), an(n,n)\n"
         "real t0(n,n), t1(n,n), t2(n,n), t3(n,n)\n"
         "real t4(n,n), t5(n,n), t6(n,n), t7(n,n)\n"
         "real s\n"
         "integer i, j, t\n"
         "forall (i=1:n, j=1:n) a(i,j) = sin(real(i))*cos(real(j))\n"
         "s = 0.0\n"
         "do t = 1, 4\n"
         "  an = cshift(a, 1, 1)\n"
         "  t0 = a - an\n"
         "  t1 = t0*0.25 + a\n"
         "  t2 = t1*0.25 + an\n"
         "  t3 = t2*0.25 + a\n"
         "  t4 = t3*0.25 + an\n"
         "  t5 = t4*0.25 + a\n"
         "  t6 = t5*0.25 + an\n"
         "  t7 = t6*0.25 + a\n"
         "  a = a + 0.001*t7\n"
         "  s = s + sum(a)/real(n*n)\n"
         "end do\n"
         "print *, 'chk:', s, maxval(a)\n"
         "end program fchain\n";
}

TEST(FaultInjectionFused, FusedChainRecoversToUnfusedFaultFreeResults) {
  // Fused compilation (the F90Y default), with the fusion metrics
  // attached so the test can prove the chain really collapsed.
  observe::MetricsRegistry MR;
  Compilation Fused(CompileOptions::forProfile(Profile::F90Y, machine()));
  Fused.setObservability(nullptr, &MR);
  ASSERT_TRUE(Fused.compile(fusedChainProgram())) << Fused.diags().str();
  ASSERT_GT(MR.value("fuse.temps_eliminated"), 0.0);

  CompileOptions Off = CompileOptions::forProfile(Profile::F90Y, machine());
  Off.Transforms.Fusion = false;
  Compilation Unfused(Off);
  ASSERT_TRUE(Unfused.compile(fusedChainProgram())) << Unfused.diags().str();

  // The reference: fault-free, fusion off. Rollback (corruption) and
  // dispatch replay (PE trap) inside the megakernel must land exactly on
  // the per-statement, fault-free results.
  Outcome Reference = runProgram(Unfused, ExecutionOptions());
  Outcome Faulty =
      runProgram(Fused, optionsFor("corrupt:0.15,pe-trap:0.1", 13, 1));
  ASSERT_TRUE(Reference.Ok) << Reference.Diags;
  ASSERT_TRUE(Faulty.Ok) << Faulty.Diags;
  EXPECT_GT(Faulty.Counters.injected(FaultKind::Corruption), 0u)
      << Faulty.Counters.str();
  EXPECT_GT(Faulty.Counters.injected(FaultKind::PeTrap), 0u)
      << Faulty.Counters.str();
  EXPECT_EQ(Faulty.Output, Reference.Output);
  EXPECT_EQ(Faulty.FinalA, Reference.FinalA);
}

TEST(FaultInjectionFused, FusedChainFaultScheduleIsThreadInvariant) {
  Compilation C(CompileOptions::forProfile(Profile::F90Y, machine()));
  ASSERT_TRUE(C.compile(fusedChainProgram())) << C.diags().str();
  Outcome T1 = runProgram(C, optionsFor("corrupt:0.15,pe-trap:0.1", 42, 1));
  Outcome T8 = runProgram(C, optionsFor("corrupt:0.15,pe-trap:0.1", 42, 8));
  EXPECT_GT(T1.Counters.totalInjected(), 0u) << T1.Counters.str();
  expectIdentical(T1, T8);
  // Same seed, same schedule: the replay is bit-exact.
  Outcome Again =
      runProgram(C, optionsFor("corrupt:0.15,pe-trap:0.1", 42, 1));
  expectIdentical(T1, Again);
}

#ifdef F90Y_SOURCE_DIR
// The acceptance sweep: every shipped sample program, under an injected
// recoverable schedule, is bit-identical at 1 and 8 threads and matches
// its own fault-free output.
TEST(FaultInjectionPrograms, SamplesAreThreadInvariantUnderFaults) {
  const char *Programs[] = {"fig10.f90", "subroutines.f90", "swe.f90"};
  for (const char *Name : Programs) {
    SCOPED_TRACE(Name);
    std::ifstream In(std::string(F90Y_SOURCE_DIR) + "/examples/programs/" +
                     Name);
    ASSERT_TRUE(In.good());
    std::stringstream Buf;
    Buf << In.rdbuf();
    Compilation C(CompileOptions::forProfile(Profile::F90Y, machine()));
    ASSERT_TRUE(C.compile(Buf.str())) << C.diags().str();

    Outcome Clean = runProgram(C, ExecutionOptions());
    Outcome T1 = runProgram(C, optionsFor(recoverableSpec(), 11, 1));
    Outcome T8 = runProgram(C, optionsFor(recoverableSpec(), 11, 8));
    ASSERT_TRUE(Clean.Ok) << Clean.Diags;
    expectIdentical(T1, T8);
    EXPECT_EQ(T1.Output, Clean.Output);
  }
}
#endif

//===----------------------------------------------------------------------===//
// Unrecoverable faults surface as structured failures
//===----------------------------------------------------------------------===//

TEST_F(FaultInjectionTest, ExhaustedRetriesFailTheRunWithDiagnostics) {
  Outcome O = runProgram(C, optionsFor("grid-timeout:1", 0, 1));
  EXPECT_FALSE(O.Ok);
  EXPECT_NE(O.Diags.find("timed out"), std::string::npos) << O.Diags;
  EXPECT_NE(O.Diags.find("error"), std::string::npos) << O.Diags;
}

TEST_F(FaultInjectionTest, SimulatedOomFailsAllocationStructurally) {
  Outcome O = runProgram(C, optionsFor("oom:1", 0, 1));
  EXPECT_FALSE(O.Ok);
  EXPECT_NE(O.Diags.find("allocation"), std::string::npos) << O.Diags;
  EXPECT_NE(O.Diags.find("out-of-memory"), std::string::npos) << O.Diags;
}

TEST_F(FaultInjectionTest, WatchdogBoundsTheRun) {
  ExecutionOptions Tight;
  Tight.Threads = 1;
  Tight.MaxSteps = 5;
  Outcome O = runProgram(C, Tight);
  EXPECT_FALSE(O.Ok);
  EXPECT_NE(O.Diags.find("watchdog"), std::string::npos) << O.Diags;

  ExecutionOptions Roomy;
  Roomy.Threads = 1;
  Roomy.MaxSteps = 10000000;
  EXPECT_TRUE(runProgram(C, Roomy).Ok);
}

//===----------------------------------------------------------------------===//
// Release-safe invariant checks
//===----------------------------------------------------------------------===//

TEST(FaultCheckDeathTest, InvalidFieldHandleAborts) {
  cm2::CostModel Costs = machine();
  runtime::CmRuntime RT(Costs);
  EXPECT_DEATH(RT.field(424242), "freed or invalid");
}

} // namespace
