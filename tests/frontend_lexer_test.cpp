//===- tests/frontend_lexer_test.cpp - lexer unit tests ---------------------===//
//
// Part of the Fortran-90-Y reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "frontend/Lexer.h"

#include <gtest/gtest.h>

using namespace f90y;
using namespace f90y::frontend;

namespace {

std::vector<Token> lex(const std::string &Src, DiagnosticEngine &Diags) {
  return Lexer(Src, Diags).lexAll();
}

std::vector<TokenKind> kinds(const std::vector<Token> &Toks) {
  std::vector<TokenKind> Out;
  for (const Token &T : Toks)
    Out.push_back(T.Kind);
  return Out;
}

TEST(Lexer, EmptyInputYieldsEOF) {
  DiagnosticEngine Diags;
  auto Toks = lex("", Diags);
  ASSERT_EQ(Toks.size(), 1u);
  EXPECT_TRUE(Toks[0].is(TokenKind::EndOfFile));
}

TEST(Lexer, KeywordsAreCaseInsensitive) {
  DiagnosticEngine Diags;
  auto Toks = lex("PROGRAM swe\nInTeGeR k\nend", Diags);
  EXPECT_EQ(Toks[0].Kind, TokenKind::KwProgram);
  EXPECT_EQ(Toks[1].Kind, TokenKind::Identifier);
  EXPECT_EQ(Toks[1].Text, "swe");
  EXPECT_EQ(Toks[3].Kind, TokenKind::KwInteger);
  EXPECT_FALSE(Diags.hasErrors());
}

TEST(Lexer, NumericLiterals) {
  DiagnosticEngine Diags;
  auto Toks = lex("x = 42 + 2.5 + 1e3 + 1.5d-4 + .25", Diags);
  ASSERT_FALSE(Diags.hasErrors()) << Diags.str();
  EXPECT_EQ(Toks[2].Kind, TokenKind::IntLiteral);
  EXPECT_EQ(Toks[2].Text, "42");
  EXPECT_EQ(Toks[4].Kind, TokenKind::RealLiteral);
  EXPECT_EQ(Toks[4].Text, "2.5");
  EXPECT_EQ(Toks[6].Kind, TokenKind::RealLiteral);
  EXPECT_EQ(Toks[6].Text, "1e3");
  EXPECT_EQ(Toks[8].Kind, TokenKind::DoubleLiteral);
  EXPECT_EQ(Toks[8].Text, "1.5e-4"); // d-exponent canonicalized to e.
  EXPECT_EQ(Toks[10].Kind, TokenKind::RealLiteral);
  EXPECT_EQ(Toks[10].Text, ".25");
}

TEST(Lexer, IntFollowedByDottedOperatorIsNotAReal) {
  DiagnosticEngine Diags;
  auto Toks = lex("x = 1.and.2", Diags);
  ASSERT_FALSE(Diags.hasErrors()) << Diags.str();
  EXPECT_EQ(Toks[2].Kind, TokenKind::IntLiteral);
  EXPECT_EQ(Toks[3].Kind, TokenKind::DotAnd);
  EXPECT_EQ(Toks[4].Kind, TokenKind::IntLiteral);
}

TEST(Lexer, DottedRelationalsMapToSymbolicKinds) {
  DiagnosticEngine Diags;
  auto Toks = lex("a .eq. b .ne. c .lt. d .le. e .gt. f .ge. g", Diags);
  ASSERT_FALSE(Diags.hasErrors()) << Diags.str();
  EXPECT_EQ(Toks[1].Kind, TokenKind::EqEq);
  EXPECT_EQ(Toks[3].Kind, TokenKind::SlashEq);
  EXPECT_EQ(Toks[5].Kind, TokenKind::Less);
  EXPECT_EQ(Toks[7].Kind, TokenKind::LessEq);
  EXPECT_EQ(Toks[9].Kind, TokenKind::Greater);
  EXPECT_EQ(Toks[11].Kind, TokenKind::GreaterEq);
}

TEST(Lexer, SymbolicOperators) {
  DiagnosticEngine Diags;
  auto Toks = lex("a == b /= c <= d >= e ** f :: g", Diags);
  ASSERT_FALSE(Diags.hasErrors()) << Diags.str();
  EXPECT_EQ(Toks[1].Kind, TokenKind::EqEq);
  EXPECT_EQ(Toks[3].Kind, TokenKind::SlashEq);
  EXPECT_EQ(Toks[5].Kind, TokenKind::LessEq);
  EXPECT_EQ(Toks[7].Kind, TokenKind::GreaterEq);
  EXPECT_EQ(Toks[9].Kind, TokenKind::StarStar);
  EXPECT_EQ(Toks[11].Kind, TokenKind::ColonColon);
}

TEST(Lexer, CommentsAreSkipped) {
  DiagnosticEngine Diags;
  auto Toks = lex("x = 1 ! trailing comment\n! full-line comment\ny = 2",
                  Diags);
  auto Ks = kinds(Toks);
  std::vector<TokenKind> Expected = {
      TokenKind::Identifier, TokenKind::Equal,     TokenKind::IntLiteral,
      TokenKind::EndOfStatement, TokenKind::Identifier, TokenKind::Equal,
      TokenKind::IntLiteral,     TokenKind::EndOfStatement,
      TokenKind::EndOfFile};
  EXPECT_EQ(Ks, Expected);
}

TEST(Lexer, ContinuationJoinsLines) {
  DiagnosticEngine Diags;
  auto Toks = lex("x = 1 + &\n    2", Diags);
  ASSERT_FALSE(Diags.hasErrors()) << Diags.str();
  auto Ks = kinds(Toks);
  std::vector<TokenKind> Expected = {
      TokenKind::Identifier, TokenKind::Equal,      TokenKind::IntLiteral,
      TokenKind::Plus,       TokenKind::IntLiteral, TokenKind::EndOfStatement,
      TokenKind::EndOfFile};
  EXPECT_EQ(Ks, Expected);
}

TEST(Lexer, ContinuationWithLeadingAmpersand) {
  DiagnosticEngine Diags;
  auto Toks = lex("x = 1 + & ! comment\n  & 2", Diags);
  ASSERT_FALSE(Diags.hasErrors()) << Diags.str();
  EXPECT_EQ(Toks[4].Kind, TokenKind::IntLiteral);
  EXPECT_EQ(Toks[4].Text, "2");
}

TEST(Lexer, StatementLabels) {
  DiagnosticEngine Diags;
  auto Toks = lex("do 10 i=1,5\n10 continue", Diags);
  ASSERT_FALSE(Diags.hasErrors()) << Diags.str();
  // "do" carries no label; the CONTINUE token carries label 10.
  EXPECT_EQ(Toks[0].Kind, TokenKind::KwDo);
  EXPECT_EQ(Toks[0].Label, 0);
  bool Found = false;
  for (const Token &T : Toks)
    if (T.is(TokenKind::KwContinue)) {
      EXPECT_EQ(T.Label, 10);
      Found = true;
    }
  EXPECT_TRUE(Found);
}

TEST(Lexer, SemicolonSeparatesStatements) {
  DiagnosticEngine Diags;
  auto Toks = lex("x = 1; y = 2", Diags);
  unsigned Separators = 0;
  for (const Token &T : Toks)
    if (T.is(TokenKind::EndOfStatement))
      ++Separators;
  EXPECT_EQ(Separators, 2u);
}

TEST(Lexer, StringLiterals) {
  DiagnosticEngine Diags;
  auto Toks = lex("print *, 'it''s fine', \"double\"", Diags);
  ASSERT_FALSE(Diags.hasErrors()) << Diags.str();
  EXPECT_EQ(Toks[3].Kind, TokenKind::StringLiteral);
  EXPECT_EQ(Toks[3].Text, "it's fine");
  EXPECT_EQ(Toks[5].Kind, TokenKind::StringLiteral);
  EXPECT_EQ(Toks[5].Text, "double");
}

TEST(Lexer, UnterminatedStringIsReported) {
  DiagnosticEngine Diags;
  lex("print *, 'oops", Diags);
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(Lexer, UnknownDottedOperatorIsReported) {
  DiagnosticEngine Diags;
  lex("a .xor. b", Diags);
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(Lexer, UnexpectedCharacterIsReported) {
  DiagnosticEngine Diags;
  lex("a = b @ c", Diags);
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(Lexer, LocationsTrackLinesAndColumns) {
  DiagnosticEngine Diags;
  auto Toks = lex("x = 1\n  y = 2", Diags);
  EXPECT_EQ(Toks[0].Loc.Line, 1u);
  EXPECT_EQ(Toks[0].Loc.Column, 1u);
  // 'y' is on line 2, column 3.
  EXPECT_EQ(Toks[4].Loc.Line, 2u);
  EXPECT_EQ(Toks[4].Loc.Column, 3u);
}

} // namespace
