//===- tests/frontend_parser_test.cpp - parser unit tests -------------------===//
//
// Part of the Fortran-90-Y reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "frontend/Lexer.h"
#include "frontend/Parser.h"

#include <gtest/gtest.h>

using namespace f90y;
using namespace f90y::frontend;
using namespace f90y::frontend::ast;

namespace {

class ParserTest : public ::testing::Test {
protected:
  ASTContext Ctx;
  DiagnosticEngine Diags;

  std::optional<ProgramUnit> parse(const std::string &Src) {
    Lexer L(Src, Diags);
    Parser P(L.lexAll(), Ctx, Diags);
    return P.parseProgram();
  }
};

TEST_F(ParserTest, MinimalProgram) {
  auto Unit = parse("program hello\nend program hello\n");
  ASSERT_TRUE(Unit.has_value()) << Diags.str();
  EXPECT_EQ(Unit->Name, "hello");
  EXPECT_TRUE(Unit->Body.empty());
}

TEST_F(ParserTest, ProgramNameDefaultsToMain) {
  auto Unit = parse("x = 1\nend\n");
  // 'x' is undeclared but parsing succeeds; semantic checks come later.
  ASSERT_TRUE(Unit.has_value()) << Diags.str();
  EXPECT_EQ(Unit->Name, "main");
}

TEST_F(ParserTest, PaperDeclarationForms) {
  // The paper's Section 2.1 example declarations.
  auto Unit = parse("program p\n"
                    "integer k(128,64), l(128)\n"
                    "integer, array(32,32) :: a\n"
                    "real, dimension(64) :: v\n"
                    "double precision m, n\n"
                    "logical flag\n"
                    "end\n");
  ASSERT_TRUE(Unit.has_value()) << Diags.str();
  ASSERT_EQ(Unit->Decls.size(), 7u);
  EXPECT_EQ(Unit->Decls[0].Name, "k");
  EXPECT_EQ(Unit->Decls[0].Ty, TypeSpec::Integer);
  EXPECT_EQ(Unit->Decls[0].Dims.size(), 2u);
  EXPECT_EQ(Unit->Decls[1].Name, "l");
  EXPECT_EQ(Unit->Decls[1].Dims.size(), 1u);
  EXPECT_EQ(Unit->Decls[2].Name, "a");
  EXPECT_EQ(Unit->Decls[2].Dims.size(), 2u);
  EXPECT_EQ(Unit->Decls[3].Name, "v");
  EXPECT_EQ(Unit->Decls[3].Ty, TypeSpec::Real);
  EXPECT_EQ(Unit->Decls[4].Ty, TypeSpec::DoublePrecision);
  EXPECT_FALSE(Unit->Decls[4].isArray());
  EXPECT_EQ(Unit->Decls[6].Ty, TypeSpec::Logical);
}

TEST_F(ParserTest, ParameterForms) {
  auto Unit = parse("program p\n"
                    "integer, parameter :: n = 64\n"
                    "real pi\n"
                    "parameter (pi = 3.14159)\n"
                    "end\n");
  ASSERT_TRUE(Unit.has_value()) << Diags.str();
  ASSERT_EQ(Unit->Decls.size(), 2u);
  EXPECT_TRUE(Unit->Decls[0].IsParameter);
  ASSERT_NE(Unit->Decls[0].Init, nullptr);
  EXPECT_TRUE(Unit->Decls[1].IsParameter);
  ASSERT_NE(Unit->Decls[1].Init, nullptr);
}

TEST_F(ParserTest, WholeArrayAssignment) {
  auto Unit = parse("program p\n"
                    "integer k(128,64), l(128)\n"
                    "l = 6\n"
                    "k = 2*k + 5\n"
                    "end\n");
  ASSERT_TRUE(Unit.has_value()) << Diags.str();
  ASSERT_EQ(Unit->Body.size(), 2u);
  const auto *A1 = dyn_cast<AssignStmt>(Unit->Body[0]);
  ASSERT_NE(A1, nullptr);
  EXPECT_TRUE(isa<IdentExpr>(A1->getLHS()));
  const auto *A2 = dyn_cast<AssignStmt>(Unit->Body[1]);
  ASSERT_NE(A2, nullptr);
  const auto *RHS = dyn_cast<BinaryExpr>(A2->getRHS());
  ASSERT_NE(RHS, nullptr);
  EXPECT_EQ(RHS->getOp(), BinOp::Add);
}

TEST_F(ParserTest, SectionAssignmentFromPaper) {
  // L(32:64) = L(96:128); K(32:64,:) = K(32:64,:)**2
  auto Unit = parse("program p\n"
                    "integer k(128,64), l(128)\n"
                    "l(32:64) = l(96:128)\n"
                    "k(32:64,:) = k(32:64,:)**2\n"
                    "end\n");
  ASSERT_TRUE(Unit.has_value()) << Diags.str();
  const auto *A1 = dyn_cast<AssignStmt>(Unit->Body[0]);
  ASSERT_NE(A1, nullptr);
  const auto *L1 = dyn_cast<ArrayRefExpr>(A1->getLHS());
  ASSERT_NE(L1, nullptr);
  ASSERT_EQ(L1->getDims().size(), 1u);
  EXPECT_TRUE(L1->getDims()[0].IsSection);
  ASSERT_NE(L1->getDims()[0].Lo, nullptr);
  EXPECT_EQ(cast<IntLitExpr>(L1->getDims()[0].Lo)->getValue(), 32);
  EXPECT_EQ(cast<IntLitExpr>(L1->getDims()[0].Hi)->getValue(), 64);

  const auto *A2 = dyn_cast<AssignStmt>(Unit->Body[1]);
  const auto *L2 = dyn_cast<ArrayRefExpr>(A2->getLHS());
  ASSERT_EQ(L2->getDims().size(), 2u);
  EXPECT_TRUE(L2->getDims()[1].IsSection);
  EXPECT_EQ(L2->getDims()[1].Lo, nullptr); // Lone ':'.
  const auto *Pow = dyn_cast<BinaryExpr>(A2->getRHS());
  ASSERT_NE(Pow, nullptr);
  EXPECT_EQ(Pow->getOp(), BinOp::Pow);
}

TEST_F(ParserTest, StridedSection) {
  auto Unit = parse("program p\n"
                    "integer b(32,32), a(32,32)\n"
                    "b(1:32:2,:) = a(1:32:2,:)\n"
                    "end\n");
  ASSERT_TRUE(Unit.has_value()) << Diags.str();
  const auto *A = cast<AssignStmt>(Unit->Body[0]);
  const auto *L = cast<ArrayRefExpr>(A->getLHS());
  ASSERT_TRUE(L->getDims()[0].IsSection);
  ASSERT_NE(L->getDims()[0].Stride, nullptr);
  EXPECT_EQ(cast<IntLitExpr>(L->getDims()[0].Stride)->getValue(), 2);
}

TEST_F(ParserTest, LabeledDoNest) {
  // The paper's Section 2.1 Fortran-77 loop nest.
  auto Unit = parse("program p\n"
                    "integer k(128,64), l(128)\n"
                    "integer i, j\n"
                    "do 10 i=1,128\n"
                    "   l(i) = 6\n"
                    "   do 20 j=1,64\n"
                    "      k(i,j) = 2*k(i,j) + 5\n"
                    "20 continue\n"
                    "10 continue\n"
                    "end\n");
  ASSERT_TRUE(Unit.has_value()) << Diags.str();
  ASSERT_EQ(Unit->Body.size(), 1u);
  const auto *Outer = dyn_cast<DoLoopStmt>(Unit->Body[0]);
  ASSERT_NE(Outer, nullptr);
  EXPECT_EQ(Outer->getVar(), "i");
  const auto *OuterBody = cast<BlockStmt>(Outer->getBody());
  ASSERT_EQ(OuterBody->getStmts().size(), 2u);
  const auto *Inner = dyn_cast<DoLoopStmt>(OuterBody->getStmts()[1]);
  ASSERT_NE(Inner, nullptr);
  EXPECT_EQ(Inner->getVar(), "j");
}

TEST_F(ParserTest, EndDoLoopWithStep) {
  auto Unit = parse("program p\n"
                    "integer i, s\n"
                    "s = 0\n"
                    "do i = 1, 10, 2\n"
                    "  s = s + i\n"
                    "end do\n"
                    "end\n");
  ASSERT_TRUE(Unit.has_value()) << Diags.str();
  const auto *Loop = dyn_cast<DoLoopStmt>(Unit->Body[1]);
  ASSERT_NE(Loop, nullptr);
  ASSERT_NE(Loop->getStep(), nullptr);
  EXPECT_EQ(cast<IntLitExpr>(Loop->getStep())->getValue(), 2);
}

TEST_F(ParserTest, DoWhile) {
  auto Unit = parse("program p\n"
                    "integer i\n"
                    "i = 0\n"
                    "do while (i < 10)\n"
                    "  i = i + 1\n"
                    "end do\n"
                    "end\n");
  ASSERT_TRUE(Unit.has_value()) << Diags.str();
  EXPECT_TRUE(isa<DoWhileStmt>(Unit->Body[1]));
}

TEST_F(ParserTest, IfElseChain) {
  auto Unit = parse("program p\n"
                    "integer x, y\n"
                    "if (x > 0) then\n"
                    "  y = 1\n"
                    "else if (x < 0) then\n"
                    "  y = -1\n"
                    "else\n"
                    "  y = 0\n"
                    "end if\n"
                    "end\n");
  ASSERT_TRUE(Unit.has_value()) << Diags.str();
  const auto *If = dyn_cast<IfStmt>(Unit->Body[0]);
  ASSERT_NE(If, nullptr);
  const auto *ElseIf = dyn_cast<IfStmt>(If->getElse());
  ASSERT_NE(ElseIf, nullptr);
  ASSERT_NE(ElseIf->getElse(), nullptr);
}

TEST_F(ParserTest, SingleLineIf) {
  auto Unit = parse("program p\n"
                    "integer x\n"
                    "if (x > 0) x = 0\n"
                    "end\n");
  ASSERT_TRUE(Unit.has_value()) << Diags.str();
  const auto *If = dyn_cast<IfStmt>(Unit->Body[0]);
  ASSERT_NE(If, nullptr);
  EXPECT_EQ(If->getElse(), nullptr);
  EXPECT_TRUE(isa<AssignStmt>(If->getThen()));
}

TEST_F(ParserTest, WhereElsewhere) {
  auto Unit = parse("program p\n"
                    "real a(8,8), b(8,8)\n"
                    "where (a > 0)\n"
                    "  b = a\n"
                    "elsewhere\n"
                    "  b = -a\n"
                    "end where\n"
                    "end\n");
  ASSERT_TRUE(Unit.has_value()) << Diags.str();
  const auto *W = dyn_cast<WhereStmt>(Unit->Body[0]);
  ASSERT_NE(W, nullptr);
  EXPECT_EQ(W->getThenAssigns().size(), 1u);
  EXPECT_EQ(W->getElseAssigns().size(), 1u);
}

TEST_F(ParserTest, SingleStatementWhere) {
  auto Unit = parse("program p\n"
                    "real a(8), b(8)\n"
                    "where (a > 0) b = sqrt(a)\n"
                    "end\n");
  ASSERT_TRUE(Unit.has_value()) << Diags.str();
  const auto *W = dyn_cast<WhereStmt>(Unit->Body[0]);
  ASSERT_NE(W, nullptr);
  EXPECT_EQ(W->getThenAssigns().size(), 1u);
  EXPECT_TRUE(W->getElseAssigns().empty());
}

TEST_F(ParserTest, ForallFromPaperFigure7) {
  auto Unit = parse("program p\n"
                    "integer, array(32,32) :: a\n"
                    "integer i, j\n"
                    "forall (i=1:32, j=1:32) a(i,j) = i+j\n"
                    "end\n");
  ASSERT_TRUE(Unit.has_value()) << Diags.str();
  const auto *F = dyn_cast<ForallStmt>(Unit->Body[0]);
  ASSERT_NE(F, nullptr);
  ASSERT_EQ(F->getIndices().size(), 2u);
  EXPECT_EQ(F->getIndices()[0].Var, "i");
  EXPECT_EQ(F->getIndices()[1].Var, "j");
  const auto *LHS = cast<ArrayRefExpr>(F->getBody()->getLHS());
  EXPECT_EQ(LHS->getDims().size(), 2u);
  EXPECT_FALSE(LHS->getDims()[0].IsSection);
}

TEST_F(ParserTest, CShiftWithKeywordArgs) {
  auto Unit = parse("program p\n"
                    "real v(64,64), z(64,64)\n"
                    "z = v - cshift(v, dim=1, shift=-1)\n"
                    "end\n");
  ASSERT_TRUE(Unit.has_value()) << Diags.str();
  const auto *A = cast<AssignStmt>(Unit->Body[0]);
  const auto *Sub = cast<BinaryExpr>(A->getRHS());
  const auto *Call = dyn_cast<CallExpr>(Sub->getRHS());
  ASSERT_NE(Call, nullptr);
  EXPECT_EQ(Call->getCallee(), "cshift");
  ASSERT_EQ(Call->getArgs().size(), 3u);
  EXPECT_EQ(Call->getKeywords()[0], "");
  EXPECT_EQ(Call->getKeywords()[1], "dim");
  EXPECT_EQ(Call->getKeywords()[2], "shift");
}

TEST_F(ParserTest, PrecedenceAndAssociativity) {
  auto Unit = parse("program p\n"
                    "real x, a, b, c\n"
                    "x = a + b * c ** 2\n"
                    "end\n");
  ASSERT_TRUE(Unit.has_value()) << Diags.str();
  const auto *A = cast<AssignStmt>(Unit->Body[0]);
  const auto *Add = cast<BinaryExpr>(A->getRHS());
  EXPECT_EQ(Add->getOp(), BinOp::Add);
  const auto *Mul = cast<BinaryExpr>(Add->getRHS());
  EXPECT_EQ(Mul->getOp(), BinOp::Mul);
  const auto *Pow = cast<BinaryExpr>(Mul->getRHS());
  EXPECT_EQ(Pow->getOp(), BinOp::Pow);
}

TEST_F(ParserTest, UnaryMinusBindsLooserThanPower) {
  auto Unit = parse("program p\n"
                    "real x, a\n"
                    "x = -a**2\n"
                    "end\n");
  ASSERT_TRUE(Unit.has_value()) << Diags.str();
  const auto *A = cast<AssignStmt>(Unit->Body[0]);
  const auto *Neg = dyn_cast<UnaryExpr>(A->getRHS());
  ASSERT_NE(Neg, nullptr);
  EXPECT_TRUE(isa<BinaryExpr>(Neg->getOperand()));
}

TEST_F(ParserTest, LogicalOperatorsAndLiterals) {
  auto Unit = parse("program p\n"
                    "logical f\n"
                    "real a, b\n"
                    "f = .not. (a > 0 .and. b > 0) .or. .true.\n"
                    "end\n");
  ASSERT_TRUE(Unit.has_value()) << Diags.str();
  const auto *A = cast<AssignStmt>(Unit->Body[0]);
  const auto *Or = cast<BinaryExpr>(A->getRHS());
  EXPECT_EQ(Or->getOp(), BinOp::Or);
  EXPECT_TRUE(isa<LogicalLitExpr>(Or->getRHS()));
}

TEST_F(ParserTest, PrintStatement) {
  auto Unit = parse("program p\n"
                    "real x\n"
                    "print *, 'x =', x\n"
                    "end\n");
  ASSERT_TRUE(Unit.has_value()) << Diags.str();
  const auto *P = dyn_cast<PrintStmt>(Unit->Body[0]);
  ASSERT_NE(P, nullptr);
  ASSERT_EQ(P->getItems().size(), 2u);
  EXPECT_TRUE(isa<StringLitExpr>(P->getItems()[0]));
}

TEST_F(ParserTest, ErrorOnMissingEnd) {
  auto Unit = parse("program p\nx = 1\n");
  EXPECT_FALSE(Unit.has_value());
  EXPECT_TRUE(Diags.hasErrors());
}

TEST_F(ParserTest, ErrorOnBadAssignmentTarget) {
  auto Unit = parse("program p\nreal x\n1 + 2 = x\nend\n");
  EXPECT_FALSE(Unit.has_value());
  EXPECT_TRUE(Diags.hasErrors());
}

TEST_F(ParserTest, ErrorInsideWhereBody) {
  auto Unit = parse("program p\n"
                    "real a(8)\n"
                    "integer i\n"
                    "where (a > 0)\n"
                    "  do i=1,2\n"
                    "  end do\n"
                    "end where\n"
                    "end\n");
  EXPECT_FALSE(Unit.has_value());
  EXPECT_NE(Diags.str().find("only assignments"), std::string::npos);
}

TEST_F(ParserTest, ContinuationInsideExpression) {
  auto Unit = parse("program p\n"
                    "real x, a, b\n"
                    "x = a + &\n"
                    "    b\n"
                    "end\n");
  ASSERT_TRUE(Unit.has_value()) << Diags.str();
  EXPECT_EQ(Unit->Body.size(), 1u);
}

} // namespace
