//===- tests/fusion_test.cpp - cross-statement elementwise fusion tests ------===//
//
// Part of the Fortran-90-Y reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fusion pass (transform/Fusion.cpp) in isolation and end to end.
/// The unit half pins the legality rules one by one: single-use
/// elementwise temporary chains fuse and their declarations disappear;
/// multi-use temps, dead temps, comm-produced temps, reads under a
/// communication call, guarded or sectioned producers, and intervening
/// writes all block fusion. The end-to-end half runs randomized
/// statement soups (temp chains, dead temps, multi-use temps, masked
/// sections, cshift-fed operands) through the full driver and requires
/// the final field memory to be byte-identical between -fuse=on and
/// -fuse=off at every -threads=1/8 x -exec=interp/compiled setting, and
/// the ledger/metrics/normalized traces to be invariant across host
/// knobs within one fuse setting.
///
//===----------------------------------------------------------------------===//

#include "driver/Driver.h"
#include "driver/Workloads.h"
#include "frontend/Lexer.h"
#include "frontend/Parser.h"
#include "interp/Interpreter.h"
#include "lower/Lowering.h"
#include "nir/Printer.h"
#include "observe/Metrics.h"
#include "observe/Trace.h"
#include "transform/Transforms.h"

#include <gtest/gtest.h>

#include <cstring>
#include <random>
#include <sstream>

using namespace f90y;
using namespace f90y::frontend;
using namespace f90y::transform;
namespace N = f90y::nir;

namespace {

//===--------------------------------------------------------------------===//
// Pass-level unit tests
//===--------------------------------------------------------------------===//

class FusionTest : public ::testing::Test {
protected:
  ast::ASTContext ACtx;
  N::NIRContext NCtx;
  DiagnosticEngine Diags;

  const N::ProgramImp *lowerSrc(const std::string &Src) {
    Lexer L(Src, Diags);
    Parser P(L.lexAll(), ACtx, Diags);
    auto Unit = P.parseProgram();
    if (!Unit)
      return nullptr;
    auto LP = lower::lowerProgram(*Unit, NCtx, Diags);
    return LP ? LP->Program : nullptr;
  }

  /// extract-comm then fuse (the pipeline prefix the pass is built to
  /// follow); returns the printed result and fills \p Stats.
  std::string fuseSrc(const std::string &Src, FusionStats &Stats) {
    const N::ProgramImp *Raw = lowerSrc(Src);
    EXPECT_NE(Raw, nullptr) << Diags.str();
    if (!Raw)
      return "";
    const N::Imp *Canon = extractComm(Raw, NCtx, Diags);
    const N::Imp *Fused = fuseElementwise(Canon, NCtx, Diags, &Stats);
    EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
    return N::printImp(Fused);
  }

  /// Interprets \p Src optimized with fusion on and off; every array in
  /// \p Arrays must match element for element.
  void expectFusedSemantics(const std::string &Src,
                            const std::vector<std::string> &Arrays) {
    const N::ProgramImp *Raw = lowerSrc(Src);
    ASSERT_NE(Raw, nullptr) << Diags.str();
    TransformOptions On, Off;
    Off.Fusion = false;
    const N::ProgramImp *POn = optimize(Raw, NCtx, Diags, On);
    const N::ProgramImp *POff = optimize(Raw, NCtx, Diags, Off);
    ASSERT_FALSE(Diags.hasErrors()) << Diags.str();
    interp::Interpreter IOn(Diags), IOff(Diags);
    ASSERT_TRUE(IOn.run(POn)) << Diags.str();
    ASSERT_TRUE(IOff.run(POff)) << Diags.str();
    for (const std::string &Name : Arrays) {
      const interp::ArrayStorage *A = IOn.getArray(Name);
      const interp::ArrayStorage *B = IOff.getArray(Name);
      ASSERT_NE(A, nullptr) << Name;
      ASSERT_NE(B, nullptr) << Name;
      ASSERT_EQ(A->Data.size(), B->Data.size()) << Name;
      for (size_t I = 0; I < A->Data.size(); ++I)
        ASSERT_EQ(A->Data[I].asReal(), B->Data[I].asReal())
            << Name << " element " << I;
    }
  }
};

TEST_F(FusionTest, SingleUseChainFusesAndDeletesTemps) {
  FusionStats S;
  std::string Out = fuseSrc("program p\n"
                            "real u(64), w(64), t0(64), t1(64)\n"
                            "u = 2.0\nw = 3.0\n"
                            "t0 = u*0.5\n"
                            "t1 = t0 + w\n"
                            "w = w + t1 + u\n"
                            "end\n",
                            S);
  EXPECT_EQ(S.TempsEliminated, 2u);
  EXPECT_EQ(S.MovesFused, 2u);
  // 2 stores + 2 loads of 64 reals each.
  EXPECT_EQ(S.BytesSaved, uint64_t(2 * 2 * 64 * 4));
  // The temporaries are gone: no reference and no declaration survives.
  EXPECT_EQ(Out.find("'t0'"), std::string::npos) << Out;
  EXPECT_EQ(Out.find("'t1'"), std::string::npos) << Out;
}

TEST_F(FusionTest, MultiUseTempDoesNotFuse) {
  FusionStats S;
  std::string Out = fuseSrc("program p\n"
                            "real u(64), v(64), s(64)\n"
                            "u = 1.0\nv = 2.0\n"
                            "s = u + v\n"
                            "u = u + s\n"
                            "v = v - s\n"
                            "end\n",
                            S);
  EXPECT_EQ(S.TempsEliminated, 0u);
  EXPECT_NE(Out.find("'s'"), std::string::npos) << Out;
}

TEST_F(FusionTest, DeadTempIsLeftAlone) {
  // A written-never-read temporary is dead-code elimination's business,
  // not fusion's: it must survive untouched (and still be observable).
  FusionStats S;
  std::string Out = fuseSrc("program p\n"
                            "real u(64), d(64)\n"
                            "u = 1.0\n"
                            "d = u*2.0\n"
                            "u = u + 1.0\n"
                            "end\n",
                            S);
  EXPECT_EQ(S.TempsEliminated, 0u);
  EXPECT_NE(Out.find("'d'"), std::string::npos) << Out;
}

TEST_F(FusionTest, CommProducedTempDoesNotFuse) {
  // t is consumed exactly once but produced by a communication: the
  // consumer may not swallow a comm call.
  FusionStats S;
  std::string Out = fuseSrc("program p\n"
                            "real u(64), t(64)\n"
                            "u = 1.0\n"
                            "t = cshift(u, 1, 1)\n"
                            "u = u + t\n"
                            "end\n",
                            S);
  EXPECT_EQ(S.TempsEliminated, 0u);
  EXPECT_NE(Out.find("'t'"), std::string::npos) << Out;
}

TEST_F(FusionTest, ReadUnderCommCallDoesNotFuse) {
  // t's only read sits inside a cshift operand; substituting the
  // producer expression there would move computation across the
  // communication boundary.
  FusionStats S;
  std::string Out = fuseSrc("program p\n"
                            "real u(64), v(64), t(64)\n"
                            "u = 1.0\nv = 2.0\n"
                            "t = u*0.5\n"
                            "v = v + cshift(t, 1, 1)\n"
                            "u = u - v\n"
                            "end\n",
                            S);
  EXPECT_EQ(S.TempsEliminated, 0u);
  EXPECT_NE(Out.find("'t'"), std::string::npos) << Out;
}

TEST_F(FusionTest, InterveningWriteBlocksFusion) {
  // u is rewritten between t's definition (which reads u) and t's use:
  // substitution would read the new u.
  FusionStats S;
  std::string Out = fuseSrc("program p\n"
                            "real u(64), w(64), t(64)\n"
                            "u = 1.0\nw = 0.0\n"
                            "t = u*2.0\n"
                            "u = 5.0\n"
                            "w = w + t\n"
                            "end\n",
                            S);
  EXPECT_EQ(S.TempsEliminated, 0u);
  EXPECT_NE(Out.find("'t'"), std::string::npos) << Out;
}

TEST_F(FusionTest, SectionedProducerDoesNotFuse) {
  FusionStats S;
  std::string Out = fuseSrc("program p\n"
                            "real u(64), t(64)\n"
                            "u = 1.0\nt = 0.0\n"
                            "t(1:64:2) = u(1:64:2)*2.0\n"
                            "u = u + t\n"
                            "end\n",
                            S);
  EXPECT_EQ(S.TempsEliminated, 0u);
  EXPECT_NE(Out.find("'t'"), std::string::npos) << Out;
}

TEST_F(FusionTest, GuardedProducerDoesNotFuse) {
  FusionStats S;
  std::string Out = fuseSrc("program p\n"
                            "real u(64), t(64)\n"
                            "u = 1.0\nt = 0.0\n"
                            "where (u > 0.5)\n"
                            "  t = u*2.0\n"
                            "end where\n"
                            "u = u + t\n"
                            "end\n",
                            S);
  EXPECT_EQ(S.TempsEliminated, 0u);
  EXPECT_NE(Out.find("'t'"), std::string::npos) << Out;
}

TEST_F(FusionTest, ChainSemanticsPreserved) {
  expectFusedSemantics("program p\n"
                       "real u(48), v(48), t0(48), t1(48), t2(48)\n"
                       "integer i\n"
                       "forall (i=1:48) u(i) = real(i)*0.5\n"
                       "forall (i=1:48) v(i) = real(i) - 24.0\n"
                       "t0 = u - v\n"
                       "t1 = t0*0.25 + u\n"
                       "t2 = t1*0.5 + v\n"
                       "u = u + 0.001*t2\n"
                       "end\n",
                       {"u", "v"});
}

TEST_F(FusionTest, MaskedAndSectionedProgramSemanticsPreserved) {
  expectFusedSemantics("program p\n"
                       "real u(48), v(48), t(48)\n"
                       "integer i\n"
                       "forall (i=1:48) u(i) = real(i)*0.5\n"
                       "v = 0.0\n"
                       "t = u*2.0\n"
                       "where (u > 10.0)\n"
                       "  v = v + 1.0\n"
                       "end where\n"
                       "v(1:48:2) = v(1:48:2) + 3.0\n"
                       "u = u + t\n"
                       "end\n",
                       {"u", "v"});
}

TEST_F(FusionTest, PipelineReportsFusionMetrics) {
  const N::ProgramImp *Raw = lowerSrc("program p\n"
                                      "real u(64), t(64)\n"
                                      "u = 1.0\n"
                                      "t = u*2.0\n"
                                      "u = u + t\n"
                                      "end\n");
  ASSERT_NE(Raw, nullptr) << Diags.str();
  observe::MetricsRegistry M;
  TransformOptions Opts;
  Opts.Metrics = &M;
  optimize(Raw, NCtx, Diags, Opts);
  ASSERT_FALSE(Diags.hasErrors()) << Diags.str();
  EXPECT_EQ(M.value("fuse.temps_eliminated"), 1.0);
  EXPECT_EQ(M.value("fuse.moves_fused"), 1.0);
  EXPECT_GT(M.value("fuse.bytes_saved"), 0.0);
}

//===--------------------------------------------------------------------===//
// Randomized fused-vs-unfused equivalence through the full driver
//===--------------------------------------------------------------------===//

/// A random straight-line program over persistent arrays u, v, w mixing
/// everything fusion must handle or refuse: single-use temp chains,
/// multi-use temps, dead temps, masked (where) updates, strided-section
/// assignments, cshift statements, cshift-fed operands, and reads of
/// temps under a communication call.
std::string randomProgram(unsigned Seed) {
  std::mt19937 Rng(Seed);
  auto Pick = [&](int Lo, int Hi) {
    return std::uniform_int_distribution<int>(Lo, Hi)(Rng);
  };
  const char *Arr[3] = {"u", "v", "w"};
  auto A = [&]() { return std::string(Arr[Pick(0, 2)]); };
  auto Expr = [&]() {
    switch (Pick(0, 3)) {
    case 0:
      return A() + "*0.5 + " + A();
    case 1:
      return A() + " - " + A() + "*0.25";
    case 2:
      return A() + " + 1.5";
    default:
      return "0.125*" + A() + " + 0.75*" + A();
    }
  };

  int NTemps = 0;
  std::ostringstream Body;
  int Stmts = 10 + Pick(0, 4);
  for (int K = 0; K < Stmts; ++K) {
    switch (Pick(0, 7)) {
    case 0: { // Single-use chain of 2-3 temps, consumed once.
      int Len = 2 + Pick(0, 1), First = NTemps;
      Body << "t" << NTemps++ << " = " << Expr() << "\n";
      for (int I = 1; I < Len; ++I, ++NTemps)
        Body << "t" << NTemps << " = t" << (NTemps - 1) << "*0.5 + " << A()
             << "\n";
      Body << A() << " = " << A() << " + 0.01*t" << (NTemps - 1) << "\n";
      (void)First;
      break;
    }
    case 1: { // Multi-use temp: must NOT fuse.
      int T = NTemps++;
      Body << "t" << T << " = " << Expr() << "\n";
      Body << "u = u + 0.01*t" << T << "\n";
      Body << "v = v - 0.01*t" << T << "\n";
      break;
    }
    case 2: // Dead temp.
      Body << "t" << NTemps++ << " = " << Expr() << "\n";
      break;
    case 3: // Masked update.
      Body << "where (" << A() << " > 0.5)\n  w = w*0.5 + 0.25\n"
           << "end where\n";
      break;
    case 4: // Communication statement.
      Body << "v = cshift(v, " << (Pick(0, 1) ? 1 : -1) << ", 1)\n";
      break;
    case 5: { // cshift-fed temp: comm-produced, must NOT fuse.
      int T = NTemps++;
      Body << "t" << T << " = cshift(" << A() << ", 1, 1)\n";
      Body << "u = u + 0.01*t" << T << "\n";
      break;
    }
    case 6: // Strided-section assignment.
      Body << "w(1:48:2) = w(1:48:2) + 0.5\n";
      break;
    default: { // Temp read under a comm call: must NOT fuse.
      int T = NTemps++;
      Body << "t" << T << " = " << Expr() << "\n";
      Body << "w = w + 0.01*cshift(t" << T << ", -1, 1)\n";
      break;
    }
    }
  }

  std::ostringstream P;
  P << "program r" << Seed << "\n";
  P << "real u(48), v(48), w(48)\n";
  for (int T = 0; T < NTemps; ++T)
    P << "real t" << T << "(48)\n";
  P << "integer i\n";
  P << "forall (i=1:48) u(i) = 0.5 + real(i)*0.01\n";
  P << "forall (i=1:48) v(i) = 1.0 - real(i)*0.02\n";
  P << "forall (i=1:48) w(i) = real(mod(i, 7))*0.125\n";
  P << Body.str();
  P << "end\n";
  return P.str();
}

/// Everything one run produces that equivalence cares about.
struct RunState {
  std::vector<double> Fields;
  std::string Output;
  runtime::CycleLedger Ledger;
};

void collectField(driver::Execution &Exec, const std::string &Name,
                  std::vector<double> &Out) {
  int Handle = Exec.executor().fieldHandle(Name);
  ASSERT_GE(Handle, 0) << Name;
  const runtime::PeArray &Got = Exec.runtime().field(Handle);
  std::vector<int64_t> Pos(Got.Geo->Extents.size(), 0);
  bool Done = Got.Geo->totalElements() == 0;
  while (!Done) {
    int64_t PE, Off;
    Got.Geo->locate(Pos, PE, Off);
    Out.push_back(Got.peBase(PE)[Off]);
    size_t K = Pos.size();
    Done = true;
    while (K-- > 0) {
      if (++Pos[K] < Got.Geo->Extents[K]) {
        Done = false;
        break;
      }
      Pos[K] = 0;
    }
  }
}

RunState runCompiled(driver::Compilation &C, const cm2::CostModel &M,
                     unsigned Threads, peac::EngineKind Engine,
                     const std::vector<std::string> &Names = {"u", "v",
                                                              "w"}) {
  driver::ExecutionOptions EO;
  EO.Threads = Threads;
  EO.Engine = Engine;
  driver::Execution Exec(M, EO);
  auto Report = Exec.run(C.artifacts().Compiled.Program);
  RunState S;
  EXPECT_TRUE(Report.has_value()) << Exec.diags().str();
  if (!Report)
    return S;
  S.Output = Report->Output;
  S.Ledger = Report->Ledger;
  for (const std::string &Name : Names)
    collectField(Exec, Name, S.Fields);
  return S;
}

bool sameFields(const RunState &A, const RunState &B) {
  return A.Fields.size() == B.Fields.size() &&
         std::memcmp(A.Fields.data(), B.Fields.data(),
                     A.Fields.size() * sizeof(double)) == 0;
}

bool sameLedger(const runtime::CycleLedger &A, const runtime::CycleLedger &B) {
  return A.NodeCycles == B.NodeCycles && A.CallCycles == B.CallCycles &&
         A.CommCycles == B.CommCycles && A.HostCycles == B.HostCycles &&
         A.OverlappedCycles == B.OverlappedCycles && A.Flops == B.Flops;
}

TEST(FusionEquivalence, RandomProgramsMatchAcrossTheExecutionMatrix) {
  cm2::CostModel M;
  M.NumPEs = 16;
  for (unsigned Seed = 1; Seed <= 8; ++Seed) {
    std::string Src = randomProgram(Seed);
    driver::CompileOptions OOn =
        driver::CompileOptions::forProfile(driver::Profile::F90Y, M);
    driver::CompileOptions OOff = OOn;
    OOff.Transforms.Fusion = false;
    driver::Compilation COn(OOn), COff(OOff);
    ASSERT_TRUE(COn.compile(Src)) << "seed " << Seed << "\n"
                                  << COn.diags().str() << Src;
    ASSERT_TRUE(COff.compile(Src)) << "seed " << Seed << "\n"
                                   << COff.diags().str() << Src;

    RunState Ref; // threads=1, interp, fuse=off: the baseline.
    bool HaveRef = false;
    runtime::CycleLedger OnLedger{};
    bool HaveOnLedger = false;
    for (unsigned Threads : {1u, 8u}) {
      for (peac::EngineKind Engine :
           {peac::EngineKind::Interp, peac::EngineKind::Compiled}) {
        RunState Off = runCompiled(COff, M, Threads, Engine);
        RunState On = runCompiled(COn, M, Threads, Engine);
        // fuse=on vs fuse=off: identical observable state.
        EXPECT_TRUE(sameFields(On, Off))
            << "seed " << Seed << " threads " << Threads << "\n"
            << Src;
        EXPECT_EQ(On.Output, Off.Output) << "seed " << Seed;
        // Within one fuse setting, host knobs may not move a cycle.
        if (!HaveRef) {
          Ref = Off;
          HaveRef = true;
        } else {
          EXPECT_TRUE(sameFields(Off, Ref)) << "seed " << Seed;
          EXPECT_TRUE(sameLedger(Off.Ledger, Ref.Ledger)) << "seed " << Seed;
        }
        if (!HaveOnLedger) {
          OnLedger = On.Ledger;
          HaveOnLedger = true;
        } else {
          EXPECT_TRUE(sameLedger(On.Ledger, OnLedger)) << "seed " << Seed;
        }
      }
    }
  }
}

TEST(FusionEquivalence, TempChainSweMatchesAcrossEngines) {
  // The benchmark workload itself, end to end at a small size: output
  // identical between fuse settings, with the fused compile measurably
  // smaller.
  cm2::CostModel M;
  std::string Src = driver::sweTempsSource(32, 2);
  driver::CompileOptions OOn =
      driver::CompileOptions::forProfile(driver::Profile::F90Y, M);
  driver::CompileOptions OOff = OOn;
  OOff.Transforms.Fusion = false;
  observe::MetricsRegistry Metrics;
  driver::Compilation COn(OOn), COff(OOff);
  COn.setObservability(nullptr, &Metrics);
  ASSERT_TRUE(COn.compile(Src)) << COn.diags().str();
  ASSERT_TRUE(COff.compile(Src)) << COff.diags().str();
  EXPECT_GT(Metrics.value("fuse.temps_eliminated"), 0.0);

  for (peac::EngineKind Engine :
       {peac::EngineKind::Interp, peac::EngineKind::Compiled}) {
    RunState On = runCompiled(COn, M, 1, Engine, {"u", "v", "p"});
    RunState Off = runCompiled(COff, M, 1, Engine, {"u", "v", "p"});
    EXPECT_TRUE(sameFields(On, Off));
    EXPECT_EQ(On.Output, Off.Output);
    // The fused program does strictly less node work.
    EXPECT_LT(On.Ledger.NodeCycles, Off.Ledger.NodeCycles);
  }
}

TEST(FusionEquivalence, NormalizedTracesInvariantAcrossThreads) {
  // Within one fuse setting, the (wall-normalized) trace and the metrics
  // export are pure functions of the simulated machine: -threads must
  // not change a byte of either.
  cm2::CostModel M;
  M.NumPEs = 16;
  std::string Src = driver::sweTempsSource(16, 2);
  driver::Compilation C(
      driver::CompileOptions::forProfile(driver::Profile::F90Y, M));
  ASSERT_TRUE(C.compile(Src)) << C.diags().str();

  auto TracedRun = [&](unsigned Threads, std::string &TraceJson,
                       std::string &MetricsText) {
    observe::TraceRecorder Trace;
    observe::MetricsRegistry Metrics;
    driver::ExecutionOptions EO;
    EO.Threads = Threads;
    // The interpreting engine sidesteps the process-wide routine cache,
    // whose hit/miss history would otherwise differ between the runs.
    EO.Engine = peac::EngineKind::Interp;
    EO.Trace = &Trace;
    EO.Metrics = &Metrics;
    driver::Execution Exec(M, EO);
    auto Report = Exec.run(C.artifacts().Compiled.Program);
    ASSERT_TRUE(Report.has_value()) << Exec.diags().str();
    TraceJson = Trace.exportJson(/*NormalizeWall=*/true);
    MetricsText = Metrics.exportText();
  };
  std::string T1, M1, T8, M8;
  TracedRun(1, T1, M1);
  TracedRun(8, T8, M8);
  EXPECT_EQ(T1, T8);
  EXPECT_EQ(M1, M8);
}

} // namespace
