//===- tests/host_test.cpp - host IR printing and execution details ----------===//
//
// Part of the Fortran-90-Y reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "driver/Driver.h"
#include "driver/Workloads.h"
#include "host/Printer.h"

#include <gtest/gtest.h>

using namespace f90y;
using namespace f90y::driver;

namespace {

cm2::CostModel small() {
  cm2::CostModel C;
  C.NumPEs = 8;
  return C;
}

std::string hostListing(const std::string &Src,
                        Profile P = Profile::F90Y) {
  CompileOptions Opts = CompileOptions::forProfile(P, small());
  // The printer assertions below spell out canonical comm statements;
  // layout inference would align the small examples' shifts away.
  Opts.Transforms.Layout = false;
  Compilation C(Opts);
  EXPECT_TRUE(C.compile(Src)) << C.diags().str();
  return host::printHostProgram(C.artifacts().Compiled.Program);
}

TEST(HostPrinter, AllocAndCall) {
  std::string L = hostListing("program p\n"
                              "real a(16), b(16)\n"
                              "b = a + 1.0\n"
                              "end\n");
  EXPECT_NE(L.find("alloc    a : 16 real (cm heap)"), std::string::npos)
      << L;
  EXPECT_NE(L.find("alloc    b : 16 real (cm heap)"), std::string::npos);
  EXPECT_NE(L.find("call     P0vs1 over 16 <- "), std::string::npos) << L;
  EXPECT_NE(L.find("ptr(a)"), std::string::npos);
}

TEST(HostPrinter, ShiftAndReduce) {
  std::string L = hostListing("program p\n"
                              "real a(16), b(16), s\n"
                              "b = cshift(a, -2, 1)\n"
                              "s = sum(b)\n"
                              "end\n");
  EXPECT_NE(L.find("cm_shift b <- cshift(a, dim=1, shift=-2)"),
            std::string::npos)
      << L;
  EXPECT_NE(L.find("cm_reduce s <- sum(b)"), std::string::npos) << L;
}

TEST(HostPrinter, SerialLoopStructure) {
  std::string L = hostListing("program p\n"
                              "integer v(8), i\n"
                              "do i=1,8\n"
                              "  v(i) = i*i\n"
                              "end do\n"
                              "end\n");
  EXPECT_NE(L.find("do       serial.0 = 1..8"), std::string::npos) << L;
  EXPECT_NE(L.find("store    v("), std::string::npos) << L;
  EXPECT_NE(L.find("end"), std::string::npos);
}

TEST(HostPrinter, SectionCopyAndScatter) {
  std::string L = hostListing("program p\n"
                              "integer l(32)\n"
                              "integer a(8,8)\n"
                              "integer i, j\n"
                              "l(1:8) = l(17:24)\n"
                              "forall (i=1:8, j=1:8) a(j,i) = i\n"
                              "end\n");
  EXPECT_NE(L.find("cm_copy  l[0:+8:1] <- l[16:+8:1]"), std::string::npos)
      << L;
  EXPECT_NE(L.find("scatter  forall."), std::string::npos) << L;
  EXPECT_NE(L.find("(router)"), std::string::npos);
}

TEST(HostPrinter, TransposeAndPrint) {
  std::string L = hostListing("program p\n"
                              "integer a(4,4), b(4,4)\n"
                              "b = transpose(a)\n"
                              "print *, 'done'\n"
                              "end\n");
  EXPECT_NE(L.find("cm_xpose b <- transpose(a)"), std::string::npos) << L;
  EXPECT_NE(L.find("print    STRING('done')"), std::string::npos) << L;
}

TEST(HostPrinter, TemporaryScopesMarkFreeing) {
  // Communication extraction introduces per-MOVE temporaries inside the
  // loop; those scopes free on exit.
  std::string L = hostListing("program p\n"
                              "real u(8), z(8)\n"
                              "integer t\n"
                              "do t=1,2\n"
                              "  z = u - cshift(u, 1, 1) + 0.5*z\n"
                              "end do\n"
                              "end\n");
  EXPECT_NE(L.find("alloc    tmp0"), std::string::npos) << L;
  EXPECT_NE(L.find("free     scope temporaries"), std::string::npos) << L;
}

TEST(HostPrinter, RoutineCountInHeader) {
  std::string L = hostListing(heatSource(8, 1));
  EXPECT_NE(L.find("PEAC routines)"), std::string::npos) << L;
}

TEST(HostExec, ScalarKindsConvertOnAssign) {
  Compilation C(CompileOptions::forProfile(Profile::F90Y, small()));
  ASSERT_TRUE(C.compile("program p\n"
                        "integer k\n"
                        "real x\n"
                        "k = 7.9\n" // Truncates.
                        "x = 3\n"   // Widens.
                        "end\n"))
      << C.diags().str();
  Execution Exec(small());
  ASSERT_TRUE(Exec.run(C.artifacts().Compiled.Program).has_value());
  EXPECT_EQ(Exec.executor().getScalar("k")->asInt(), 7);
  EXPECT_DOUBLE_EQ(Exec.executor().getScalar("x")->asReal(), 3.0);
}

TEST(HostExec, PresetArraySeedsMachineRun) {
  Compilation C(CompileOptions::forProfile(Profile::F90Y, small()));
  ASSERT_TRUE(C.compile("program p\n"
                        "real a(4), s\n"
                        "s = sum(a)\n"
                        "end\n"))
      << C.diags().str();
  Execution Exec(small());
  Exec.executor().presetArray("a", {1.5, 2.5, 3.0, 3.0});
  ASSERT_TRUE(Exec.run(C.artifacts().Compiled.Program).has_value());
  EXPECT_DOUBLE_EQ(Exec.executor().getScalar("s")->asReal(), 10.0);
}

TEST(HostExec, RuntimeSubscriptErrorIsReported) {
  Compilation C(CompileOptions::forProfile(Profile::F90Y, small()));
  ASSERT_TRUE(C.compile("program p\n"
                        "integer v(4), i\n"
                        "i = 9\n"
                        "v(i) = 1\n"
                        "end\n"))
      << C.diags().str();
  Execution Exec(small());
  EXPECT_FALSE(Exec.run(C.artifacts().Compiled.Program).has_value());
  EXPECT_NE(Exec.diags().str().find("out of bounds"), std::string::npos);
}

} // namespace
