//===- tests/inline_test.cpp - procedure integration tests -------------------===//
//
// Part of the Fortran-90-Y reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// SUBROUTINE units and CALL statements: by-reference argument
/// association, local renaming, nested and repeated calls, and the full
/// pipeline (integrated programs compile and run on the simulated machine
/// with results matching the reference interpreter).
///
//===----------------------------------------------------------------------===//

#include "driver/Driver.h"
#include "interp/Interpreter.h"

#include <gtest/gtest.h>

using namespace f90y;
using namespace f90y::driver;

namespace {

cm2::CostModel small() {
  cm2::CostModel C;
  C.NumPEs = 8;
  return C;
}

class InlineTest : public ::testing::Test {
protected:
  /// Compiles, runs on the machine and in the interpreter, and returns
  /// the machine value of scalar \p Name (asserting agreement).
  double runAndGet(const std::string &Src, const std::string &Name) {
    CompileOptions Opts = CompileOptions::forProfile(Profile::F90Y, small());
    Compilation C(Opts);
    EXPECT_TRUE(C.compile(Src)) << C.diags().str();
    if (C.diags().hasErrors())
      return 0;

    DiagnosticEngine IDiags;
    interp::Interpreter Interp(IDiags);
    EXPECT_TRUE(Interp.run(C.artifacts().RawNIR)) << IDiags.str();

    Execution Exec(small());
    auto Report = Exec.run(C.artifacts().Compiled.Program);
    EXPECT_TRUE(Report.has_value()) << Exec.diags().str();
    if (!Report)
      return 0;
    auto Machine = Exec.executor().getScalar(Name);
    auto Ref = Interp.getScalar(Name);
    EXPECT_TRUE(Machine.has_value());
    EXPECT_TRUE(Ref.has_value());
    if (Machine && Ref)
      EXPECT_NEAR(Machine->asReal(), Ref->asReal(), 1e-9);
    return Machine ? Machine->asReal() : 0;
  }

  bool failsToCompile(const std::string &Src, const std::string &Needle) {
    Compilation C(CompileOptions::forProfile(Profile::F90Y, small()));
    bool OK = C.compile(Src);
    EXPECT_FALSE(OK) << "expected failure mentioning '" << Needle << "'";
    if (!OK)
      EXPECT_NE(C.diags().str().find(Needle), std::string::npos)
          << C.diags().str();
    return !OK;
  }
};

TEST_F(InlineTest, ScalarByReference) {
  EXPECT_DOUBLE_EQ(runAndGet("subroutine bump(x)\n"
                             "real x\n"
                             "x = x + 1.5\n"
                             "end subroutine bump\n"
                             "program p\n"
                             "real y\n"
                             "y = 2.0\n"
                             "call bump(y)\n"
                             "call bump(y)\n"
                             "end\n",
                             "y"),
                   5.0);
}

TEST_F(InlineTest, ArrayArgumentModifiedInPlace) {
  EXPECT_DOUBLE_EQ(runAndGet("subroutine scale(a, f)\n"
                             "real a(16)\n"
                             "real f\n"
                             "a = f*a\n"
                             "end subroutine\n"
                             "program p\n"
                             "real v(16), s\n"
                             "v = 2.0\n"
                             "call scale(v, 3.0)\n"
                             "s = sum(v)\n"
                             "end\n",
                             "s"),
                   96.0);
}

TEST_F(InlineTest, LocalsAreRenamedPerCall) {
  // Each integration gets its own 'acc' local; no cross-talk.
  EXPECT_DOUBLE_EQ(runAndGet("subroutine sumsq(a, s)\n"
                             "real a(8), s\n"
                             "real acc(8)\n"
                             "acc = a*a\n"
                             "s = sum(acc)\n"
                             "end\n"
                             "program p\n"
                             "real u(8), w(8), s1, s2, total\n"
                             "u = 2.0\n"
                             "w = 3.0\n"
                             "call sumsq(u, s1)\n"
                             "call sumsq(w, s2)\n"
                             "total = s1 + s2\n"
                             "end\n",
                             "total"),
                   8 * 4.0 + 8 * 9.0);
}

TEST_F(InlineTest, NestedCalls) {
  EXPECT_DOUBLE_EQ(runAndGet("subroutine inner(x)\n"
                             "real x\n"
                             "x = 2.0*x\n"
                             "end\n"
                             "subroutine outer(x)\n"
                             "real x\n"
                             "call inner(x)\n"
                             "x = x + 1.0\n"
                             "end\n"
                             "program p\n"
                             "real y\n"
                             "y = 5.0\n"
                             "call outer(y)\n"
                             "end\n",
                             "y"),
                   11.0);
}

TEST_F(InlineTest, CallInsideLoopAndIf) {
  EXPECT_DOUBLE_EQ(runAndGet("subroutine addone(s)\n"
                             "integer s\n"
                             "s = s + 1\n"
                             "end\n"
                             "program p\n"
                             "integer s, i\n"
                             "s = 0\n"
                             "do i=1,10\n"
                             "  if (mod(i,2) == 0) call addone(s)\n"
                             "end do\n"
                             "end\n",
                             "s"),
                   5.0);
}

TEST_F(InlineTest, StencilSubroutineOnArrays) {
  EXPECT_NEAR(runAndGet("subroutine smooth(u, v)\n"
                        "real u(12,12), v(12,12)\n"
                        "v = 0.25*(cshift(u,1,1) + cshift(u,-1,1) &\n"
                        "        + cshift(u,1,2) + cshift(u,-1,2))\n"
                        "end\n"
                        "program p\n"
                        "real a(12,12), b(12,12), s\n"
                        "integer i, j\n"
                        "forall (i=1:12, j=1:12) a(i,j) = real(i*j)\n"
                        "call smooth(a, b)\n"
                        "call smooth(b, a)\n"
                        "s = sum(a)\n"
                        "end\n",
                        "s"),
              // Circular smoothing preserves the field's total:
              // sum(i*j) = (sum 1..12)^2 = 78^2.
              6084.0, 1e-6);
}

TEST_F(InlineTest, ExpressionActualForReadOnlyDummy) {
  EXPECT_DOUBLE_EQ(runAndGet("subroutine addto(s, x)\n"
                             "real s, x\n"
                             "s = s + x\n"
                             "end\n"
                             "program p\n"
                             "real s\n"
                             "s = 1.0\n"
                             "call addto(s, 2.0 + 3.0)\n"
                             "end\n",
                             "s"),
                   6.0);
}

TEST_F(InlineTest, ParameterLocalsSubstituteIntoBounds) {
  EXPECT_DOUBLE_EQ(runAndGet("subroutine fill(s)\n"
                             "real s\n"
                             "integer, parameter :: m = 6\n"
                             "real w(m)\n"
                             "w = 2.0\n"
                             "s = sum(w)\n"
                             "end\n"
                             "program p\n"
                             "real s\n"
                             "call fill(s)\n"
                             "end\n",
                             "s"),
                   12.0);
}

//===--------------------------------------------------------------------===//
// Rejections
//===--------------------------------------------------------------------===//

TEST_F(InlineTest, RejectsUnknownSubroutine) {
  failsToCompile("program p\ncall nope()\nend\n", "unknown subroutine");
}

TEST_F(InlineTest, RejectsArityMismatch) {
  failsToCompile("subroutine f(x)\nreal x\nx = 1.0\nend\n"
                 "program p\nreal y\ncall f(y, y)\nend\n",
                 "expects 1 arguments");
}

TEST_F(InlineTest, RejectsRecursion) {
  failsToCompile("subroutine f(x)\nreal x\ncall f(x)\nend\n"
                 "program p\nreal y\ncall f(y)\nend\n",
                 "recursive CALL");
}

TEST_F(InlineTest, RejectsWriteThroughExpressionActual) {
  failsToCompile("subroutine f(x)\nreal x\nx = 1.0\nend\n"
                 "program p\nreal y\ny = 0.0\ncall f(y + 1.0)\nend\n",
                 "must be a variable");
}

TEST_F(InlineTest, RejectsScalarActualForArrayDummy) {
  failsToCompile("subroutine f(a)\nreal a(8)\na = 1.0\nend\n"
                 "program p\nreal y\ncall f(y)\nend\n",
                 "array/scalar kind");
}

TEST_F(InlineTest, RejectsUndeclaredDummy) {
  failsToCompile("subroutine f(x)\nend\n"
                 "program p\nreal y\ncall f(y)\nend\n",
                 "is not declared");
}

TEST_F(InlineTest, RejectsTwoMainPrograms) {
  failsToCompile("program a\nend\nprogram b\nend\n",
                 "only one main program");
}

} // namespace
