//===- tests/interp_test.cpp - reference interpreter unit tests -------------===//
//
// Part of the Fortran-90-Y reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// End-to-end semantics tests: Fortran-90 source -> lowering -> reference
/// interpretation, with checks on final store contents. This fixes the
/// semantics the compiled paths must reproduce.
///
//===----------------------------------------------------------------------===//

#include "frontend/Lexer.h"
#include "frontend/Parser.h"
#include "interp/Interpreter.h"
#include "lower/Lowering.h"

#include <gtest/gtest.h>

using namespace f90y;
using namespace f90y::frontend;
using namespace f90y::interp;

namespace {

class InterpTest : public ::testing::Test {
protected:
  ast::ASTContext ACtx;
  nir::NIRContext NCtx;
  DiagnosticEngine Diags;
  Interpreter Interp{Diags};

  bool runSrc(const std::string &Src) {
    Lexer L(Src, Diags);
    Parser P(L.lexAll(), ACtx, Diags);
    auto Unit = P.parseProgram();
    if (!Unit)
      return false;
    auto LP = lower::lowerProgram(*Unit, NCtx, Diags);
    if (!LP)
      return false;
    return Interp.run(LP->Program);
  }

  double arrayAt(const std::string &Name, std::vector<int64_t> Pos) {
    const ArrayStorage *A = Interp.getArray(Name);
    EXPECT_NE(A, nullptr) << "array " << Name << " not allocated";
    if (!A)
      return 0;
    for (size_t D = 0; D < Pos.size(); ++D)
      Pos[D] -= A->Extents[D].Lo;
    return A->Data[A->linearIndex(Pos)].asReal();
  }
};

TEST_F(InterpTest, Section21Example) {
  // Paper Section 2.1: the Fortran-90 replacement of the F77 loops.
  ASSERT_TRUE(runSrc("program p\n"
                     "integer k(128,64), l(128)\n"
                     "k = 3\n"
                     "l = 6\n"
                     "k = 2*k + 5\n"
                     "end\n"))
      << Diags.str();
  EXPECT_EQ(arrayAt("l", {1}), 6);
  EXPECT_EQ(arrayAt("l", {128}), 6);
  EXPECT_EQ(arrayAt("k", {1, 1}), 11);
  EXPECT_EQ(arrayAt("k", {128, 64}), 11);
}

TEST_F(InterpTest, WholeArrayReadsOldValues) {
  // Vector semantics: k = k + cumulative effects must not chain.
  ASSERT_TRUE(runSrc("program p\n"
                     "integer v(4), i\n"
                     "do i=1,4\n"
                     "  v(i) = i\n"
                     "end do\n"
                     "v = v + cshift(v, 1, 1)\n"
                     "end\n"))
      << Diags.str();
  // v was 1,2,3,4; cshift(+1) = 2,3,4,1; sum = 3,5,7,5.
  EXPECT_EQ(arrayAt("v", {1}), 3);
  EXPECT_EQ(arrayAt("v", {2}), 5);
  EXPECT_EQ(arrayAt("v", {3}), 7);
  EXPECT_EQ(arrayAt("v", {4}), 5);
}

TEST_F(InterpTest, SectionCopyMisaligned) {
  // Paper Section 2.1: L(32:64) = L(96:128).
  ASSERT_TRUE(runSrc("program p\n"
                     "integer l(128), i\n"
                     "do i=1,128\n"
                     "  l(i) = i\n"
                     "end do\n"
                     "l(32:64) = l(96:128)\n"
                     "end\n"))
      << Diags.str();
  EXPECT_EQ(arrayAt("l", {31}), 31);
  EXPECT_EQ(arrayAt("l", {32}), 96);
  EXPECT_EQ(arrayAt("l", {64}), 128);
  EXPECT_EQ(arrayAt("l", {65}), 65);
}

TEST_F(InterpTest, OverlappingSectionCopyUsesVectorSemantics) {
  ASSERT_TRUE(runSrc("program p\n"
                     "integer l(8), i\n"
                     "do i=1,8\n"
                     "  l(i) = i\n"
                     "end do\n"
                     "l(2:8) = l(1:7)\n"
                     "end\n"))
      << Diags.str();
  // All RHS elements read before any store: l becomes 1,1,2,3,4,5,6,7.
  EXPECT_EQ(arrayAt("l", {1}), 1);
  EXPECT_EQ(arrayAt("l", {2}), 1);
  EXPECT_EQ(arrayAt("l", {8}), 7);
}

TEST_F(InterpTest, StridedSectionAssignment) {
  // Paper Figure 10 workload shape.
  ASSERT_TRUE(runSrc("program p\n"
                     "integer a(32,32), b(32,32)\n"
                     "integer n\n"
                     "n = 7\n"
                     "a = n\n"
                     "b(1:32:2,:) = a(1:32:2,:)\n"
                     "b(2:32:2,:) = 5*a(2:32:2,:)\n"
                     "end\n"))
      << Diags.str();
  EXPECT_EQ(arrayAt("b", {1, 5}), 7);
  EXPECT_EQ(arrayAt("b", {2, 5}), 35);
  EXPECT_EQ(arrayAt("b", {31, 32}), 7);
  EXPECT_EQ(arrayAt("b", {32, 32}), 35);
}

TEST_F(InterpTest, ForallIdentity) {
  // Paper Figure 7: FORALL (i=1:32, j=1:32) A(i,j) = i+j.
  ASSERT_TRUE(runSrc("program p\n"
                     "integer, array(32,32) :: a\n"
                     "integer i, j\n"
                     "forall (i=1:32, j=1:32) a(i,j) = i+j\n"
                     "end\n"))
      << Diags.str();
  EXPECT_EQ(arrayAt("a", {1, 1}), 2);
  EXPECT_EQ(arrayAt("a", {32, 32}), 64);
  EXPECT_EQ(arrayAt("a", {5, 9}), 14);
}

TEST_F(InterpTest, ForallTransposedStore) {
  ASSERT_TRUE(runSrc("program p\n"
                     "integer, array(4,4) :: a\n"
                     "integer i, j\n"
                     "forall (i=1:4, j=1:4) a(j,i) = 10*i + j\n"
                     "end\n"))
      << Diags.str();
  EXPECT_EQ(arrayAt("a", {2, 3}), 32); // i=3, j=2.
}

TEST_F(InterpTest, WhereElsewhere) {
  ASSERT_TRUE(runSrc("program p\n"
                     "integer a(8), b(8), i\n"
                     "do i=1,8\n"
                     "  a(i) = i - 4\n"
                     "end do\n"
                     "where (a > 0)\n"
                     "  b = a\n"
                     "elsewhere\n"
                     "  b = -a\n"
                     "end where\n"
                     "end\n"))
      << Diags.str();
  // b = |i-4|.
  EXPECT_EQ(arrayAt("b", {1}), 3);
  EXPECT_EQ(arrayAt("b", {4}), 0);
  EXPECT_EQ(arrayAt("b", {8}), 4);
}

TEST_F(InterpTest, CShiftTwoDimensional) {
  ASSERT_TRUE(runSrc("program p\n"
                     "integer a(3,3), b(3,3)\n"
                     "integer i, j\n"
                     "forall (i=1:3, j=1:3) a(i,j) = 10*i + j\n"
                     "b = cshift(a, 1, 2)\n"
                     "end\n"))
      << Diags.str();
  // Shift along dim 2 by +1: b(i,j) = a(i, j+1 circular).
  EXPECT_EQ(arrayAt("b", {1, 1}), 12);
  EXPECT_EQ(arrayAt("b", {1, 3}), 11);
  EXPECT_EQ(arrayAt("b", {3, 2}), 33);
}

TEST_F(InterpTest, EOShiftFillsZero) {
  ASSERT_TRUE(runSrc("program p\n"
                     "integer v(4), w(4), i\n"
                     "do i=1,4\n"
                     "  v(i) = i\n"
                     "end do\n"
                     "w = eoshift(v, 1, 1)\n"
                     "end\n"))
      << Diags.str();
  EXPECT_EQ(arrayAt("w", {1}), 2);
  EXPECT_EQ(arrayAt("w", {3}), 4);
  EXPECT_EQ(arrayAt("w", {4}), 0);
}

TEST_F(InterpTest, NestedCShift) {
  ASSERT_TRUE(runSrc("program p\n"
                     "integer v(4), w(4), i\n"
                     "do i=1,4\n"
                     "  v(i) = i\n"
                     "end do\n"
                     "w = cshift(cshift(v, 1, 1), 1, 1)\n"
                     "end\n"))
      << Diags.str();
  EXPECT_EQ(arrayAt("w", {1}), 3);
  EXPECT_EQ(arrayAt("w", {4}), 2);
}

TEST_F(InterpTest, Reductions) {
  ASSERT_TRUE(runSrc("program p\n"
                     "integer v(5), i, s, mx, mn\n"
                     "do i=1,5\n"
                     "  v(i) = i*i - 6\n" // -5,-2,3,10,19
                     "end do\n"
                     "s = sum(v)\n"
                     "mx = maxval(v)\n"
                     "mn = minval(v)\n"
                     "end\n"))
      << Diags.str();
  EXPECT_EQ(Interp.getScalar("s")->asInt(), 25);
  EXPECT_EQ(Interp.getScalar("mx")->asInt(), 19);
  EXPECT_EQ(Interp.getScalar("mn")->asInt(), -5);
}

TEST_F(InterpTest, ReductionOfExpression) {
  ASSERT_TRUE(runSrc("program p\n"
                     "real a(4), s\n"
                     "a = 2.0\n"
                     "s = sum(a*a)\n"
                     "end\n"))
      << Diags.str();
  EXPECT_DOUBLE_EQ(Interp.getScalar("s")->asReal(), 16.0);
}

TEST_F(InterpTest, MergeSelectsElementally) {
  ASSERT_TRUE(runSrc("program p\n"
                     "integer v(6), w(6), i\n"
                     "do i=1,6\n"
                     "  v(i) = i\n"
                     "end do\n"
                     "w = merge(v, -v, mod(v,2) == 0)\n"
                     "end\n"))
      << Diags.str();
  EXPECT_EQ(arrayAt("w", {1}), -1);
  EXPECT_EQ(arrayAt("w", {2}), 2);
  EXPECT_EQ(arrayAt("w", {5}), -5);
}

TEST_F(InterpTest, TransposeRoundTrips) {
  ASSERT_TRUE(runSrc("program p\n"
                     "integer a(3,3), b(3,3)\n"
                     "integer i, j\n"
                     "forall (i=1:3, j=1:3) a(i,j) = 10*i + j\n"
                     "b = transpose(a)\n"
                     "end\n"))
      << Diags.str();
  EXPECT_EQ(arrayAt("b", {1, 3}), 31);
  EXPECT_EQ(arrayAt("b", {3, 1}), 13);
}

TEST_F(InterpTest, SerialLoopAccumulation) {
  ASSERT_TRUE(runSrc("program p\n"
                     "integer i, s\n"
                     "s = 0\n"
                     "do i=1,10\n"
                     "  s = s + i\n"
                     "end do\n"
                     "end\n"))
      << Diags.str();
  EXPECT_EQ(Interp.getScalar("s")->asInt(), 55);
}

TEST_F(InterpTest, SteppedLoop) {
  ASSERT_TRUE(runSrc("program p\n"
                     "integer i, s\n"
                     "s = 0\n"
                     "do i=1,10,3\n" // 1,4,7,10
                     "  s = s + i\n"
                     "end do\n"
                     "end\n"))
      << Diags.str();
  EXPECT_EQ(Interp.getScalar("s")->asInt(), 22);
}

TEST_F(InterpTest, DoWhileAndIf) {
  ASSERT_TRUE(runSrc("program p\n"
                     "integer n, steps\n"
                     "n = 27\n"
                     "steps = 0\n"
                     "do while (n /= 1)\n"
                     "  if (mod(n,2) == 0) then\n"
                     "    n = n / 2\n"
                     "  else\n"
                     "    n = 3*n + 1\n"
                     "  end if\n"
                     "  steps = steps + 1\n"
                     "end do\n"
                     "end\n"))
      << Diags.str();
  EXPECT_EQ(Interp.getScalar("steps")->asInt(), 111); // Collatz(27).
}

TEST_F(InterpTest, IntegerDivisionTruncates) {
  ASSERT_TRUE(runSrc("program p\n"
                     "integer a, b\n"
                     "a = 7 / 2\n"
                     "b = -7 / 2\n"
                     "end\n"))
      << Diags.str();
  EXPECT_EQ(Interp.getScalar("a")->asInt(), 3);
  EXPECT_EQ(Interp.getScalar("b")->asInt(), -3);
}

TEST_F(InterpTest, PowerSemantics) {
  ASSERT_TRUE(runSrc("program p\n"
                     "integer k\n"
                     "real x\n"
                     "k = 2**10\n"
                     "x = 2.0**0.5\n"
                     "end\n"))
      << Diags.str();
  EXPECT_EQ(Interp.getScalar("k")->asInt(), 1024);
  EXPECT_NEAR(Interp.getScalar("x")->asReal(), 1.41421356, 1e-6);
}

TEST_F(InterpTest, PrintOutput) {
  ASSERT_TRUE(runSrc("program p\n"
                     "integer x\n"
                     "x = 42\n"
                     "print *, 'x =', x\n"
                     "end\n"))
      << Diags.str();
  EXPECT_EQ(Interp.output(), "x = 42\n");
}

TEST_F(InterpTest, FlopCounterCountsFloatingOps) {
  ASSERT_TRUE(runSrc("program p\n"
                     "real a(10), b(10)\n"
                     "a = 1.5\n"
                     "b = a*a + 2.0\n"
                     "end\n"))
      << Diags.str();
  // Per element: one multiply + one add = 2 flops over 10 elements.
  EXPECT_EQ(Interp.flopCount(), 20u);
}

TEST_F(InterpTest, IntOpsAreNotFlops) {
  ASSERT_TRUE(runSrc("program p\n"
                     "integer k(8)\n"
                     "k = 2*k + 5\n"
                     "end\n"))
      << Diags.str();
  EXPECT_EQ(Interp.flopCount(), 0u);
}

TEST_F(InterpTest, PresetArraySeedsInput) {
  Interp.presetArray("a", {5.0, 6.0, 7.0, 8.0});
  ASSERT_TRUE(runSrc("program p\n"
                     "real a(4), s\n"
                     "s = sum(a)\n"
                     "end\n"))
      << Diags.str();
  EXPECT_DOUBLE_EQ(Interp.getScalar("s")->asReal(), 26.0);
}

TEST_F(InterpTest, SubscriptOutOfBoundsIsRuntimeError) {
  EXPECT_FALSE(runSrc("program p\n"
                      "integer v(4), i\n"
                      "i = 5\n"
                      "v(i) = 1\n"
                      "end\n"));
  EXPECT_NE(Diags.str().find("out of bounds"), std::string::npos);
}

TEST_F(InterpTest, MaskedMoveClausesShareOneBurst) {
  // Figure 10 semantics: the odd/even masked assignments behave like two
  // disjoint masked moves over the common shape.
  ASSERT_TRUE(runSrc("program p\n"
                     "integer a(32,32), b(32,32), c(32)\n"
                     "integer n\n"
                     "n = 1\n"
                     "a = n\n"
                     "b(1:32:2,:) = a(1:32:2,:)\n"
                     "c = n+1\n"
                     "b(2:32:2,:) = 5*a(2:32:2,:)\n"
                     "end\n"))
      << Diags.str();
  EXPECT_EQ(arrayAt("b", {3, 3}), 1);
  EXPECT_EQ(arrayAt("b", {4, 3}), 5);
  EXPECT_EQ(arrayAt("c", {9}), 2);
}

} // namespace
