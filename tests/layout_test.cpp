//===- tests/layout_test.cpp - alignment/layout inference -------------------===//
//
// Part of the Fortran-90-Y reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The alignment/layout inference contract (DESIGN.md Section 12):
/// descriptors round-trip through their printed form; the solver is
/// deterministic and assigns the offsets that localize neighbor-field
/// exchanges; materialization rewrites co-located exchanges into local
/// copies and re-expresses residual ones by their physical distance;
/// -layout=infer is bit-identical to -layout=canonical (including under
/// injected faults); a checkpoint taken under one placement refuses to
/// restore into another; and the verifier rejects a computational MOVE
/// across misaligned descriptors.
///
//===----------------------------------------------------------------------===//

#include "driver/Driver.h"
#include "driver/Workloads.h"
#include "host/Printer.h"
#include "layout/Layout.h"
#include "nir/NIRContext.h"
#include "nir/Printer.h"
#include "nir/Verifier.h"
#include "observe/Metrics.h"
#include "runtime/Checkpoint.h"

#include <cstdio>
#include <map>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

using namespace f90y;
using namespace f90y::driver;

namespace {

cm2::CostModel machine() {
  cm2::CostModel C;
  C.NumPEs = 64;
  return C;
}

// ---------------------------------------------------------------------------
// LayoutDescriptor
// ---------------------------------------------------------------------------

TEST(LayoutDescriptor, StrParseRoundTrip) {
  layout::LayoutDescriptor D;
  D.AxisMap = {1, 0};
  D.Offsets = {3, -2};
  D.Replicated = true;
  EXPECT_EQ(D.str(), "axes=1,0;off=3,-2;rep=1");

  layout::LayoutDescriptor Back;
  ASSERT_TRUE(layout::LayoutDescriptor::parse(D.str(), Back));
  EXPECT_EQ(Back, D);

  // The elided canonical form round-trips too.
  layout::LayoutDescriptor Canon;
  EXPECT_EQ(Canon.str(), "axes=;off=;rep=0");
  ASSERT_TRUE(layout::LayoutDescriptor::parse(Canon.str(), Back));
  EXPECT_TRUE(Back.isCanonical());

  EXPECT_FALSE(layout::LayoutDescriptor::parse("", Back));
  EXPECT_FALSE(layout::LayoutDescriptor::parse("off=1;axes=;rep=0", Back));
  EXPECT_FALSE(layout::LayoutDescriptor::parse("axes=;off=x;rep=0", Back));
  EXPECT_FALSE(layout::LayoutDescriptor::parse("axes=;off=1;rep=2", Back));
}

TEST(LayoutDescriptor, NormalizeAndEquality) {
  layout::LayoutDescriptor D;
  D.Offsets = {-1, 8};
  D.normalize({8, 8});
  EXPECT_EQ(D.offsetAt(0), 7);
  EXPECT_EQ(D.offsetAt(1), 0);

  // Explicit identity and elided forms denote the same placement.
  layout::LayoutDescriptor Explicit;
  Explicit.AxisMap = {0, 1};
  Explicit.Offsets = {0, 0};
  EXPECT_TRUE(Explicit.isCanonical());
  EXPECT_EQ(Explicit, layout::LayoutDescriptor());
  Explicit.normalize({8, 8});
  EXPECT_TRUE(Explicit.AxisMap.empty());
  EXPECT_TRUE(Explicit.Offsets.empty());

  layout::LayoutDescriptor Shifted;
  Shifted.Offsets = {1};
  EXPECT_NE(Shifted, layout::LayoutDescriptor());
  EXPECT_FALSE(Shifted.isCanonical());
}

// ---------------------------------------------------------------------------
// Solver + materialization (driven through the driver pipeline)
// ---------------------------------------------------------------------------

std::unique_ptr<Compilation> compileWithLayout(const std::string &Src,
                                               bool Infer,
                                               observe::MetricsRegistry *M) {
  CompileOptions Opts = CompileOptions::forProfile(Profile::F90Y, machine());
  Opts.Transforms.Layout = Infer;
  auto C = std::make_unique<Compilation>(Opts);
  if (M)
    C->setObservability(nullptr, M);
  EXPECT_TRUE(C->compile(Src)) << C->diags().str();
  return C;
}

/// A neighbor-field consumer: 'an' lives one cell east of 'a', and only
/// ever meets 'a' again through the shifted-back 'bw', so the solver can
/// store 'an'/'b' pre-shifted and localize both exchanges.
const char *neighborSource() {
  return "program nb\n"
         "integer, parameter :: n = 8\n"
         "real a(n,n), an(n,n), b(n,n), bw(n,n)\n"
         "integer i, j, t\n"
         "forall (i=1:n, j=1:n) a(i,j) = real(i) + 0.5*real(j)\n"
         "do t = 1, 3\n"
         "  an = cshift(a, 1, 1)\n"
         "  b = 0.5*an + 1.0\n"
         "  bw = cshift(b, -1, 1)\n"
         "  a = a + 0.001*bw\n"
         "end do\n"
         "print *, 'sum:', sum(a)\n"
         "end program nb\n";
}

TEST(LayoutInfer, NeighborFieldsLocalized) {
  observe::MetricsRegistry Metrics;
  auto C = compileWithLayout(neighborSource(), true, &Metrics);
  EXPECT_EQ(Metrics.value("layout.fields_realigned"), 2.0);
  EXPECT_EQ(Metrics.value("layout.comm_moves_localized"), 2.0);
  EXPECT_GT(Metrics.value("layout.comm_cycles_saved"), 0.0);

  // The host program allocates the realigned fields pre-shifted and has
  // no cm_shift left for them.
  std::string L = host::printHostProgram(C->artifacts().Compiled.Program);
  EXPECT_NE(L.find("alloc    an : 8x8 real (cm heap) layout{off=1,0}"),
            std::string::npos)
      << L;
  EXPECT_NE(L.find("alloc    b : 8x8 real (cm heap) layout{off=1,0}"),
            std::string::npos)
      << L;
  EXPECT_EQ(L.find("cm_shift"), std::string::npos) << L;
}

TEST(LayoutInfer, SolverIsDeterministic) {
  auto A = compileWithLayout(misalignedSweSource(16, 2), true, nullptr);
  auto B = compileWithLayout(misalignedSweSource(16, 2), true, nullptr);
  EXPECT_EQ(host::printHostProgram(A->artifacts().Compiled.Program),
            host::printHostProgram(B->artifacts().Compiled.Program));
}

TEST(LayoutInfer, PinnedWorkloadsStayCanonical) {
  // The stock SWE and heat stencils mix home-frame and shifted reads in
  // one statement, which pins everything to one placement: inference
  // must leave the programs bit-identical to the canonical pipeline.
  for (const std::string &Src :
       {sweSource(16, 1), heatSource(16, 2), figure12Source(16)}) {
    observe::MetricsRegistry Metrics;
    auto Infer = compileWithLayout(Src, true, &Metrics);
    auto Canon = compileWithLayout(Src, false, nullptr);
    EXPECT_EQ(Metrics.value("layout.fields_realigned"), 0.0);
    EXPECT_EQ(Metrics.value("layout.comm_moves_localized"), 0.0);
    EXPECT_EQ(host::printHostProgram(Infer->artifacts().Compiled.Program),
              host::printHostProgram(Canon->artifacts().Compiled.Program));
  }
}

/// Reads \p Name element by element in logical order through the
/// runtime's layout-aware path, so realigned and canonical runs produce
/// comparable vectors.
std::vector<double> logicalField(Execution &Exec, const std::string &Name) {
  std::vector<double> Out;
  int Handle = Exec.executor().fieldHandle(Name);
  if (Handle < 0)
    return Out;
  const runtime::PeArray &Got = Exec.runtime().field(Handle);
  std::vector<int64_t> Pos(Got.Geo->Extents.size(), 0);
  bool Done = Got.Geo->totalElements() == 0;
  while (!Done) {
    Out.push_back(Exec.runtime().readElement(Handle, Pos));
    size_t K = Pos.size();
    Done = true;
    while (K-- > 0) {
      if (++Pos[K] < Got.Geo->Extents[K]) {
        Done = false;
        break;
      }
      Pos[K] = 0;
    }
  }
  return Out;
}

TEST(LayoutInfer, ResidualShiftKeepsPhysicalDistance) {
  // 'b' and 'c' are forced into one placement by the consuming 'e', but
  // their shift distances from the (pinned) home field 'a' differ: the
  // solver localizes one exchange, and the other stays with its smaller
  // physical distance while the logical distance rides along as the
  // trace annotation.
  const char *Src = "program resid\n"
                    "integer, parameter :: n = 8\n"
                    "real a(n), b(n), c(n), e(n)\n"
                    "integer i\n"
                    "forall (i=1:n) a(i) = real(i)\n"
                    "b = cshift(a, 1, 1)\n"
                    "c = cshift(a, 2, 1)\n"
                    "e = b + c\n"
                    "print *, 'sum:', sum(a)\n"
                    "end program resid\n";
  auto C = compileWithLayout(Src, true, nullptr);
  std::string L = host::printHostProgram(C->artifacts().Compiled.Program);
  EXPECT_NE(L.find("realigned(logical="), std::string::npos) << L;

  // The residual leg still computes exactly the canonical chain.
  auto Canon = compileWithLayout(Src, false, nullptr);
  Execution EI(machine()), EC(machine());
  auto RI = EI.run(C->artifacts().Compiled.Program);
  auto RC = EC.run(Canon->artifacts().Compiled.Program);
  ASSERT_TRUE(RI && RC) << EI.diags().str() << EC.diags().str();
  EXPECT_EQ(RI->Output, RC->Output);
  for (const char *F : {"b", "c", "e"})
    EXPECT_EQ(logicalField(EI, F), logicalField(EC, F)) << F << "\n" << L;
}

// ---------------------------------------------------------------------------
// Infer-vs-canonical equivalence sweep
// ---------------------------------------------------------------------------

/// One seeded random neighbor-field program: a home field updated from a
/// chain of shifted copies. Depending on the drawn shifts the solver
/// localizes everything, leaves residual exchanges, or freezes the chain
/// canonical - all must be bit-identical to the canonical pipeline.
std::string randomProgram(std::mt19937 &Rng,
                          std::vector<std::string> &Fields) {
  std::uniform_int_distribution<int> ShiftDist(-2, 2);
  std::uniform_int_distribution<int> AxisDist(1, 2);
  std::uniform_int_distribution<int> LenDist(1, 3);
  int Links = LenDist(Rng);
  std::string Src = "program rnd\n"
                    "integer, parameter :: n = 8\n"
                    "real a(n,n)\n";
  Fields = {"a"};
  for (int I = 0; I < Links; ++I) {
    Src += "real s" + std::to_string(I) + "(n,n)\n";
    Fields.push_back("s" + std::to_string(I));
  }
  Src += "integer i, j, t\n"
         "forall (i=1:n, j=1:n) a(i,j) = real(i*j)\n"
         "do t = 1, 2\n";
  std::string Prev = "a";
  for (int I = 0; I < Links; ++I) {
    int S = ShiftDist(Rng);
    if (S == 0)
      S = 1;
    Src += "  s" + std::to_string(I) + " = cshift(" + Prev + ", " +
           std::to_string(S) + ", " + std::to_string(AxisDist(Rng)) + ")\n";
    Prev = "s" + std::to_string(I);
  }
  Src += "  a = 0.5*a + 0.25*" + Prev + "\n";
  Src += "end do\n"
         "print *, 'sum:', sum(a)\n"
         "end program rnd\n";
  return Src;
}

TEST(LayoutEquivalence, RandomizedInferVsCanonical) {
  std::mt19937 Rng(0xf90u);
  for (int Trial = 0; Trial < 12; ++Trial) {
    std::vector<std::string> Fields;
    std::string Src = randomProgram(Rng, Fields);
    auto Infer = compileWithLayout(Src, true, nullptr);
    auto Canon = compileWithLayout(Src, false, nullptr);
    // Every other trial runs under recoverable injected faults: retries
    // must not observe placement either.
    ExecutionOptions EO;
    if (Trial % 2) {
      std::string Error;
      ASSERT_TRUE(support::FaultSpec::parse("corrupt:0.01,pe-trap:0.005",
                                            EO.Faults, Error))
          << Error;
      EO.FaultSeed = 11 + Trial;
    }
    Execution EI(machine(), EO), EC(machine(), EO);
    auto RI = EI.run(Infer->artifacts().Compiled.Program);
    auto RC = EC.run(Canon->artifacts().Compiled.Program);
    ASSERT_TRUE(RI && RC)
        << "trial " << Trial << "\n"
        << Src << EI.diags().str() << EC.diags().str();
    EXPECT_EQ(RI->Output, RC->Output) << "trial " << Trial << "\n" << Src;
    for (const std::string &F : Fields)
      EXPECT_EQ(logicalField(EI, F), logicalField(EC, F))
          << "trial " << Trial << " field " << F << "\n"
          << Src;
  }
}

TEST(LayoutEquivalence, MisalignedSweFullMatrix) {
  // The full compile-time x run-time matrix: layout crossed with fusion
  // at compile time, threads x engine x comm at run time. Every leg must
  // agree with the fused canonical baseline in output and logical-order
  // field memory.
  const std::string Src = misalignedSweSource(16, 3);
  const std::vector<std::string> Fields = {"u", "v", "p", "pe", "fe", "q"};
  std::map<std::string, std::unique_ptr<Compilation>> Legs;
  for (bool Infer : {true, false})
    for (bool Fuse : {true, false}) {
      CompileOptions Opts =
          CompileOptions::forProfile(Profile::F90Y, machine());
      Opts.Transforms.Layout = Infer;
      Opts.Transforms.Fusion = Fuse;
      auto C = std::make_unique<Compilation>(Opts);
      ASSERT_TRUE(C->compile(Src)) << C->diags().str();
      Legs[std::string(Infer ? "infer" : "canonical") + "/" +
           (Fuse ? "fuse" : "nofuse")] = std::move(C);
    }
  for (unsigned Threads : {1u, 4u}) {
    for (peac::EngineKind Engine :
         {peac::EngineKind::Interp, peac::EngineKind::Compiled}) {
      for (bool Overlap : {false, true}) {
        ExecutionOptions EO;
        EO.Threads = Threads;
        EO.Engine = Engine;
        EO.OverlapComm = Overlap;
        Execution Ref(machine(), EO);
        auto RefRep = Ref.run(Legs["canonical/fuse"]->artifacts()
                                  .Compiled.Program);
        ASSERT_TRUE(RefRep) << Ref.diags().str();
        for (auto &[Name, C] : Legs) {
          SCOPED_TRACE(Name);
          Execution E(machine(), EO);
          auto R = E.run(C->artifacts().Compiled.Program);
          ASSERT_TRUE(R) << E.diags().str();
          EXPECT_EQ(R->Output, RefRep->Output);
          for (const std::string &F : Fields)
            EXPECT_EQ(logicalField(E, F), logicalField(Ref, F)) << F;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Checkpoint layout signature
// ---------------------------------------------------------------------------

std::string tempPath(const std::string &Leaf) {
  const ::testing::TestInfo *TI =
      ::testing::UnitTest::GetInstance()->current_test_info();
  return ::testing::TempDir() + "f90y_" + TI->test_suite_name() + "_" +
         TI->name() + "_" + Leaf;
}

/// Runs \p Program to completion once to learn its statement count, then
/// re-runs with every-step checkpoints and the statement watchdog set to
/// half (the in-process stand-in for a mid-run crash, as in
/// checkpoint_test). Returns the checkpoint path; asserts the killed run
/// committed at least one checkpoint.
std::string killMidRun(const host::HostProgram &Program) {
  observe::MetricsRegistry Metrics;
  ExecutionOptions Base;
  Base.Metrics = &Metrics;
  Execution Full(machine(), Base);
  EXPECT_TRUE(Full.run(Program).has_value()) << Full.diags().str();
  uint64_t Total = static_cast<uint64_t>(Metrics.value("exec.statements"));
  EXPECT_GT(Total, 4u);

  std::string Path = tempPath("ck");
  std::remove(Path.c_str());
  ExecutionOptions Write;
  Write.Checkpoint.Path = Path;
  Write.MaxSteps = Total / 2;
  Execution Killed(machine(), Write);
  EXPECT_FALSE(Killed.run(Program).has_value());
  EXPECT_GE(Killed.checkpoint()->writesCompleted(), 1u)
      << Killed.diags().str();
  return Path;
}

TEST(LayoutCheckpoint, DescriptorsSurviveRestore) {
  // Kill a realigned run at a step boundary and resume: the restored run
  // must be bit-identical to an uninterrupted one.
  auto C = compileWithLayout(misalignedSweSource(8, 6), true, nullptr);
  Execution Full(machine());
  auto FullRep = Full.run(C->artifacts().Compiled.Program);
  ASSERT_TRUE(FullRep) << Full.diags().str();

  std::string Path = killMidRun(C->artifacts().Compiled.Program);

  ExecutionOptions Resume;
  Resume.Checkpoint.RestorePath = Path;
  Execution Resumed(machine(), Resume);
  auto ResumedRep = Resumed.run(C->artifacts().Compiled.Program);
  ASSERT_TRUE(ResumedRep) << Resumed.diags().str();
  EXPECT_FALSE(Resumed.restoreFailed());
  EXPECT_EQ(ResumedRep->Output, FullRep->Output);
  for (const char *F : {"p", "pe", "fe"})
    EXPECT_EQ(logicalField(Resumed, F), logicalField(Full, F)) << F;
  std::remove(Path.c_str());
}

TEST(LayoutCheckpoint, MismatchedLayoutRejected) {
  // A checkpoint written under -layout=infer refuses to restore into a
  // -layout=canonical run of the same program (and names the cause).
  auto Infer = compileWithLayout(misalignedSweSource(8, 6), true, nullptr);
  auto Canon = compileWithLayout(misalignedSweSource(8, 6), false, nullptr);
  std::string Path = killMidRun(Infer->artifacts().Compiled.Program);

  ExecutionOptions Resume;
  Resume.Checkpoint.RestorePath = Path;
  Execution Resumed(machine(), Resume);
  EXPECT_FALSE(Resumed.run(Canon->artifacts().Compiled.Program));
  EXPECT_TRUE(Resumed.restoreFailed()) << Resumed.diags().str();
  EXPECT_NE(Resumed.diags().str().find("layout"), std::string::npos)
      << Resumed.diags().str();
  std::remove(Path.c_str());
}

// ---------------------------------------------------------------------------
// Verifier + NIR printer coverage
// ---------------------------------------------------------------------------

TEST(LayoutVerifier, RejectsMixedComputationalMove) {
  nir::NIRContext Ctx;
  DiagnosticEngine Diags;
  layout::LayoutDescriptor Shifted;
  Shifted.Offsets = {1};
  const nir::Decl *Decls = Ctx.getDeclSet(
      {Ctx.getDecl("a", Ctx.getDField(Ctx.getDomainRef("d"),
                                      Ctx.getFloat64()),
                   Shifted),
       Ctx.getDecl("b", Ctx.getDField(Ctx.getDomainRef("d"),
                                      Ctx.getFloat64()))});
  // b = a + 1.0 across differing offsets is not a pure copy: slot-wise
  // evaluation would read rotated data.
  const nir::Imp *M = Ctx.getMove(
      {{Ctx.getTrue(),
        Ctx.getBinary(nir::BinaryOp::Add,
                      Ctx.getAVar("a", Ctx.getEverywhere()),
                      Ctx.getFloatConst(1.0)),
        Ctx.getAVar("b", Ctx.getEverywhere())}});
  const nir::Imp *Prog = Ctx.getWithDomain(
      "d", Ctx.getInterval(1, 8), Ctx.getWithDecl(Decls, M));

  nir::VerifyOptions Strict;
  Strict.LayoutConsistency = true;
  EXPECT_FALSE(nir::verify(Prog, Diags, Strict));
  EXPECT_NE(Diags.str().find("mixes misaligned layouts"), std::string::npos)
      << Diags.str();

  // The same program without the layout option (the raw pipeline) and a
  // pure whole-field copy across the same descriptors both verify.
  DiagnosticEngine D2;
  EXPECT_TRUE(nir::verify(Prog, D2)) << D2.str();
  const nir::Imp *Copy = Ctx.getMove(
      {{Ctx.getTrue(), Ctx.getAVar("a", Ctx.getEverywhere()),
        Ctx.getAVar("b", Ctx.getEverywhere())}});
  const nir::Imp *CopyProg = Ctx.getWithDomain(
      "d", Ctx.getInterval(1, 8), Ctx.getWithDecl(Decls, Copy));
  DiagnosticEngine D3;
  EXPECT_TRUE(nir::verify(CopyProg, D3, Strict)) << D3.str();
}

TEST(LayoutPrinter, DeclCarriesDescriptor) {
  nir::NIRContext Ctx;
  layout::LayoutDescriptor Shifted;
  Shifted.Offsets = {2, 0};
  const nir::Decl *D = Ctx.getDecl(
      "pe", Ctx.getDField(Ctx.getDomainRef("g"), Ctx.getFloat64()), Shifted);
  std::string Printed = nir::printDecl(D);
  EXPECT_NE(Printed.find("layout{axes=;off=2,0;rep=0}"), std::string::npos)
      << Printed;
  // Canonical decls keep the historical printed form.
  const nir::Decl *Canon = Ctx.getDecl(
      "p", Ctx.getDField(Ctx.getDomainRef("g"), Ctx.getFloat64()));
  EXPECT_EQ(nir::printDecl(Canon).find("layout{"), std::string::npos);
}

} // namespace
