//===- tests/lower_test.cpp - semantic lowering unit tests ------------------===//
//
// Part of the Fortran-90-Y reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exercises the AST -> NIR semantic equations: declarations become
/// WITH_DOMAIN/WITH_DECL structure, whole-array assignment becomes parallel
/// MOVEs, sections survive as section restrictors, WHERE becomes masked
/// clauses, FORALL takes the Figure 7 form, serial DO loops become DOs over
/// serial intervals, and type/shape errors are rejected.
///
//===----------------------------------------------------------------------===//

#include "frontend/Lexer.h"
#include "frontend/Parser.h"
#include "lower/Lowering.h"
#include "nir/Printer.h"

#include <gtest/gtest.h>

using namespace f90y;
using namespace f90y::frontend;
namespace N = f90y::nir;

namespace {

class LowerTest : public ::testing::Test {
protected:
  ast::ASTContext ACtx;
  N::NIRContext NCtx;
  DiagnosticEngine Diags;

  std::optional<lower::LoweredProgram> lowerSrc(const std::string &Src) {
    Lexer L(Src, Diags);
    Parser P(L.lexAll(), ACtx, Diags);
    auto Unit = P.parseProgram();
    if (!Unit)
      return std::nullopt;
    return lower::lowerProgram(*Unit, NCtx, Diags);
  }

  std::string lowerToString(const std::string &Src) {
    auto LP = lowerSrc(Src);
    if (!LP)
      return "<error>\n" + Diags.str();
    return N::printImp(LP->Program);
  }
};

TEST_F(LowerTest, Section21WholeArrayExample) {
  // Paper Section 2.1 / Figure 8: L = 6; K = 2*K + 5.
  std::string Out = lowerToString("program p\n"
                                  "integer k(128,64), l(128)\n"
                                  "l = 6\n"
                                  "k = 2*k + 5\n"
                                  "end\n");
  EXPECT_NE(Out.find("WITH_DOMAIN(('alpha', prod_dom[interval(point 1, "
                     "point 128), interval(point 1, point 64)]),"),
            std::string::npos)
      << Out;
  EXPECT_NE(Out.find("WITH_DOMAIN(('beta', interval(point 1, point 128)),"),
            std::string::npos)
      << Out;
  EXPECT_NE(Out.find("(True, (SCALAR(integer_32,'6'), AVAR('l', "
                     "everywhere)))"),
            std::string::npos)
      << Out;
  EXPECT_NE(Out.find("BINARY(Add, BINARY(Mul, SCALAR(integer_32,'2'), "
                     "AVAR('k', everywhere)), SCALAR(integer_32,'5'))"),
            std::string::npos)
      << Out;
}

TEST_F(LowerTest, SameShapedArraysShareOneDomain) {
  std::string Out = lowerToString("program p\n"
                                  "real a(64,64), b(64,64), c(64)\n"
                                  "a = b\n"
                                  "end\n");
  // a and b share 'alpha'; c gets 'beta'.
  EXPECT_NE(Out.find("DECL('a', dfield(shape=domain 'alpha'"),
            std::string::npos)
      << Out;
  EXPECT_NE(Out.find("DECL('b', dfield(shape=domain 'alpha'"),
            std::string::npos)
      << Out;
  EXPECT_NE(Out.find("DECL('c', dfield(shape=domain 'beta'"),
            std::string::npos)
      << Out;
}

TEST_F(LowerTest, ParameterFoldsIntoConstants) {
  std::string Out = lowerToString("program p\n"
                                  "integer, parameter :: n = 64\n"
                                  "real a(n,n)\n"
                                  "a = real(n)\n"
                                  "end\n");
  EXPECT_NE(Out.find("interval(point 1, point 64)"), std::string::npos)
      << Out;
  // real(n) folds n to 64 and converts.
  EXPECT_NE(Out.find("UNARY(IntToF, SCALAR(integer_32,'64'))"),
            std::string::npos)
      << Out;
  // Parameters do not appear as declarations.
  EXPECT_EQ(Out.find("DECL('n'"), std::string::npos) << Out;
}

TEST_F(LowerTest, SectionAssignmentKeepsSectionRestrictor) {
  std::string Out = lowerToString("program p\n"
                                  "integer b(32,32), a(32,32)\n"
                                  "b(1:32:2,:) = 5*a(1:32:2,:)\n"
                                  "end\n");
  EXPECT_NE(Out.find("AVAR('b', section[1:32:2, :])"), std::string::npos)
      << Out;
  EXPECT_NE(Out.find("AVAR('a', section[1:32:2, :])"), std::string::npos)
      << Out;
}

TEST_F(LowerTest, MisalignedSectionsLowerWithDistinctSections) {
  // Paper Section 2.1: L(32:64) = L(96:128).
  std::string Out = lowerToString("program p\n"
                                  "integer l(128)\n"
                                  "l(32:64) = l(96:128)\n"
                                  "end\n");
  EXPECT_NE(Out.find("AVAR('l', section[96:128])"), std::string::npos)
      << Out;
  EXPECT_NE(Out.find("AVAR('l', section[32:64])"), std::string::npos)
      << Out;
}

TEST_F(LowerTest, WhereBecomesMaskedClauses) {
  std::string Out = lowerToString("program p\n"
                                  "real a(8,8), b(8,8)\n"
                                  "where (a > 0)\n"
                                  "  b = a\n"
                                  "elsewhere\n"
                                  "  b = -a\n"
                                  "end where\n"
                                  "end\n");
  EXPECT_NE(Out.find("(BINARY(Greater, AVAR('a', everywhere), "),
            std::string::npos)
      << Out;
  EXPECT_NE(Out.find("(UNARY(Not, BINARY(Greater, AVAR('a', everywhere)"),
            std::string::npos)
      << Out;
  // Both arms belong to ONE MOVE (a single computation burst).
  size_t MoveCount = 0;
  for (size_t P = Out.find("MOVE["); P != std::string::npos;
       P = Out.find("MOVE[", P + 1))
    ++MoveCount;
  EXPECT_EQ(MoveCount, 1u) << Out;
}

TEST_F(LowerTest, ForallIdentityTakesFigure7Form) {
  std::string Out = lowerToString("program p\n"
                                  "integer, array(32,32) :: a\n"
                                  "integer i, j\n"
                                  "forall (i=1:32, j=1:32) a(i,j) = i+j\n"
                                  "end\n");
  // Identity FORALL: a single MOVE of coordinate arithmetic into
  // AVAR('a', everywhere) — no DO construct.
  EXPECT_NE(Out.find("BINARY(Add, local_under(domain 'alpha',1), "
                     "local_under(domain 'alpha',2))"),
            std::string::npos)
      << Out;
  EXPECT_NE(Out.find("AVAR('a', everywhere)"), std::string::npos) << Out;
  EXPECT_EQ(Out.find("DO("), std::string::npos) << Out;
}

TEST_F(LowerTest, GeneralForallBecomesParallelDo) {
  // Transposed store: not the identity; takes the DO + subscript form.
  std::string Out = lowerToString("program p\n"
                                  "integer, array(32,32) :: a\n"
                                  "integer i, j\n"
                                  "forall (i=1:32, j=1:32) a(j,i) = i\n"
                                  "end\n");
  EXPECT_NE(Out.find("DO(domain 'forall."), std::string::npos) << Out;
  EXPECT_NE(Out.find("subscript[local_under(domain 'forall."),
            std::string::npos)
      << Out;
}

TEST_F(LowerTest, SerialDoLowersToSerialInterval) {
  std::string Out = lowerToString("program p\n"
                                  "integer l(128)\n"
                                  "integer i\n"
                                  "do 10 i=1,128\n"
                                  "   l(i) = 6\n"
                                  "10 continue\n"
                                  "end\n");
  EXPECT_NE(Out.find("serial_interval(point 1, point 128)"),
            std::string::npos)
      << Out;
  EXPECT_NE(Out.find("AVAR('l', subscript[local_under(domain 'serial."),
            std::string::npos)
      << Out;
}

TEST_F(LowerTest, SteppedDoUsesAffineCoordinate) {
  std::string Out = lowerToString("program p\n"
                                  "integer l(16), i\n"
                                  "do i=1,16,3\n"
                                  "  l(i) = i\n"
                                  "end do\n"
                                  "end\n");
  // Count = 6 -> serial_interval(0,5), index = 1 + coord*3.
  EXPECT_NE(Out.find("serial_interval(point 0, point 5)"),
            std::string::npos)
      << Out;
  EXPECT_NE(Out.find("BINARY(Add, SCALAR(integer_32,'1'), BINARY(Mul, "
                     "local_under(domain 'serial."),
            std::string::npos)
      << Out;
}

TEST_F(LowerTest, CShiftKeywordsNormalizeToPositional) {
  std::string Out = lowerToString("program p\n"
                                  "real v(64,64), z(64,64)\n"
                                  "z = v - cshift(v, dim=1, shift=-1)\n"
                                  "end\n");
  EXPECT_NE(Out.find("FCNCALL('cshift', [AVAR('v', everywhere), "
                     "SCALAR(integer_32,'-1'), SCALAR(integer_32,'1')])"),
            std::string::npos)
      << Out;
}

TEST_F(LowerTest, ReductionProducesScalar) {
  std::string Out = lowerToString("program p\n"
                                  "real a(8,8), s\n"
                                  "s = sum(a)\n"
                                  "end\n");
  EXPECT_NE(Out.find("(True, (FCNCALL('sum', [AVAR('a', everywhere)]), "
                     "SVAR 's'))"),
            std::string::npos)
      << Out;
}

TEST_F(LowerTest, IntToFloatPromotionInserted) {
  std::string Out = lowerToString("program p\n"
                                  "real x\n"
                                  "integer k\n"
                                  "x = k + 1.5\n"
                                  "end\n");
  EXPECT_NE(Out.find("BINARY(Add, UNARY(IntToF, SVAR 'k'), "
                     "SCALAR(float_32,'1.5'))"),
            std::string::npos)
      << Out;
}

TEST_F(LowerTest, IntegerExponentStaysIntegral) {
  std::string Out = lowerToString("program p\n"
                                  "real a(8), b(8)\n"
                                  "a = b**2\n"
                                  "end\n");
  EXPECT_NE(Out.find("BINARY(Pow, AVAR('b', everywhere), "
                     "SCALAR(integer_32,'2'))"),
            std::string::npos)
      << Out;
}

TEST_F(LowerTest, DotProductDesugarsToSumOfProduct) {
  std::string Out = lowerToString("program p\n"
                                  "real a(8), b(8), s\n"
                                  "s = dot_product(a, b)\n"
                                  "end\n");
  EXPECT_NE(Out.find("FCNCALL('sum', [BINARY(Mul, AVAR('a', everywhere), "
                     "AVAR('b', everywhere))])"),
            std::string::npos)
      << Out;
}

TEST_F(LowerTest, PrintLowersToHostCall) {
  std::string Out = lowerToString("program p\n"
                                  "real x\n"
                                  "print *, 'x =', x\n"
                                  "end\n");
  EXPECT_NE(Out.find("CALL('print', [STRING('x ='), SVAR 'x'])"),
            std::string::npos)
      << Out;
}

TEST_F(LowerTest, DoubleLiteralIsFloat64) {
  std::string Out = lowerToString("program p\n"
                                  "double precision x\n"
                                  "x = 2.5d0\n"
                                  "end\n");
  EXPECT_NE(Out.find("SCALAR(float_64,'2.5')"), std::string::npos) << Out;
}

//===--------------------------------------------------------------------===//
// Rejection cases (typecheck / shapecheck diagnostics)
//===--------------------------------------------------------------------===//

TEST_F(LowerTest, RejectsShapeMismatch) {
  auto LP = lowerSrc("program p\n"
                     "real a(8,8), b(4,4)\n"
                     "a = b\n"
                     "end\n");
  EXPECT_FALSE(LP.has_value());
  EXPECT_NE(Diags.str().find("shape mismatch"), std::string::npos)
      << Diags.str();
}

TEST_F(LowerTest, RejectsSectionCountMismatch) {
  auto LP = lowerSrc("program p\n"
                     "real a(16)\n"
                     "a(1:4) = a(1:8)\n"
                     "end\n");
  EXPECT_FALSE(LP.has_value());
  EXPECT_NE(Diags.str().find("shape mismatch"), std::string::npos);
}

TEST_F(LowerTest, RejectsArithmeticOnLogicals) {
  auto LP = lowerSrc("program p\n"
                     "logical f\n"
                     "real x\n"
                     "x = f + 1\n"
                     "end\n");
  EXPECT_FALSE(LP.has_value());
  EXPECT_NE(Diags.str().find("arithmetic on logical"), std::string::npos);
}

TEST_F(LowerTest, RejectsScalarAssignedFromArray) {
  auto LP = lowerSrc("program p\n"
                     "real a(8), x\n"
                     "x = a\n"
                     "end\n");
  EXPECT_FALSE(LP.has_value());
}

TEST_F(LowerTest, RejectsAssignmentToParameter) {
  auto LP = lowerSrc("program p\n"
                     "integer, parameter :: n = 4\n"
                     "n = 5\n"
                     "end\n");
  EXPECT_FALSE(LP.has_value());
  EXPECT_NE(Diags.str().find("PARAMETER"), std::string::npos);
}

TEST_F(LowerTest, RejectsAssignmentToLoopVariable) {
  auto LP = lowerSrc("program p\n"
                     "integer i\n"
                     "do i=1,4\n"
                     "  i = 2\n"
                     "end do\n"
                     "end\n");
  EXPECT_FALSE(LP.has_value());
  EXPECT_NE(Diags.str().find("loop variable"), std::string::npos);
}

TEST_F(LowerTest, RejectsNonConstantArrayBounds) {
  auto LP = lowerSrc("program p\n"
                     "integer m\n"
                     "real a(m)\n"
                     "a = 0\n"
                     "end\n");
  EXPECT_FALSE(LP.has_value());
  EXPECT_NE(Diags.str().find("compile-time constant"), std::string::npos);
}

TEST_F(LowerTest, RejectsUndeclaredName) {
  auto LP = lowerSrc("program p\n"
                     "x = 1\n"
                     "end\n");
  EXPECT_FALSE(LP.has_value());
  EXPECT_NE(Diags.str().find("undeclared"), std::string::npos);
}

TEST_F(LowerTest, RejectsCShiftOutOfRangeDim) {
  auto LP = lowerSrc("program p\n"
                     "real v(8)\n"
                     "v = cshift(v, 1, 2)\n"
                     "end\n");
  EXPECT_FALSE(LP.has_value());
  EXPECT_NE(Diags.str().find("dim out of range"), std::string::npos);
}

TEST_F(LowerTest, RejectsUnknownIntrinsic) {
  auto LP = lowerSrc("program p\n"
                     "real x\n"
                     "x = frobnicate(1.0)\n"
                     "end\n");
  EXPECT_FALSE(LP.has_value());
  EXPECT_NE(Diags.str().find("unknown function"), std::string::npos);
}

TEST_F(LowerTest, RejectsRankMismatch) {
  auto LP = lowerSrc("program p\n"
                     "real a(8,8)\n"
                     "a(3) = 1\n"
                     "end\n");
  EXPECT_FALSE(LP.has_value());
  EXPECT_NE(Diags.str().find("rank mismatch"), std::string::npos);
}

TEST_F(LowerTest, RejectsSectionBeyondBounds) {
  auto LP = lowerSrc("program p\n"
                     "real a(8)\n"
                     "a(4:12) = 0\n"
                     "end\n");
  EXPECT_FALSE(LP.has_value());
  EXPECT_NE(Diags.str().find("exceeds declared bounds"), std::string::npos);
}

TEST_F(LowerTest, RejectsWhereMaskShapeMismatch) {
  auto LP = lowerSrc("program p\n"
                     "real a(8,8), c(4,4)\n"
                     "where (a > 0)\n"
                     "  c = 1\n"
                     "end where\n"
                     "end\n");
  EXPECT_FALSE(LP.has_value());
  EXPECT_NE(Diags.str().find("disagrees with mask"), std::string::npos);
}

} // namespace
