//===- tests/nir_printer_test.cpp - NIR printer unit tests ------------------===//
//
// Part of the Fortran-90-Y reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Checks that the printer reproduces the paper's notation, including the
/// Figure 8 excerpt (shape-parameterized parallel computation for
/// `L = 6; K = 2*K + 5`).
///
//===----------------------------------------------------------------------===//

#include "nir/Equality.h"
#include "nir/NIRContext.h"
#include "nir/Printer.h"

#include <gtest/gtest.h>

using namespace f90y;
using namespace f90y::nir;

namespace {

class PrinterTest : public ::testing::Test {
protected:
  NIRContext Ctx;
};

TEST_F(PrinterTest, Shapes) {
  EXPECT_EQ(printShape(Ctx.getPoint(7)), "point 7");
  EXPECT_EQ(printShape(Ctx.getInterval(1, 128)),
            "interval(point 1, point 128)");
  EXPECT_EQ(printShape(Ctx.getSerialInterval(1, 64)),
            "serial_interval(point 1, point 64)");
  EXPECT_EQ(printShape(Ctx.getDomainRef("alpha")), "domain 'alpha'");
  EXPECT_EQ(printShape(Ctx.getProdDom(
                {Ctx.getDomainRef("alpha"), Ctx.getInterval(1, 64)})),
            "prod_dom[domain 'alpha', interval(point 1, point 64)]");
}

TEST_F(PrinterTest, Types) {
  EXPECT_EQ(printType(Ctx.getInteger32()), "integer_32");
  EXPECT_EQ(printType(Ctx.getLogical32()), "logical_32");
  EXPECT_EQ(printType(Ctx.getFloat32()), "float_32");
  EXPECT_EQ(printType(Ctx.getFloat64()), "float_64");
  const Type *Field =
      Ctx.getDField(Ctx.getDomainRef("beta"), Ctx.getInteger32());
  EXPECT_EQ(printType(Field),
            "dfield(shape=domain 'beta', element=integer_32)");
}

TEST_F(PrinterTest, ValuesMatchAppendixExamples) {
  // Appendix: a*b+sin(c) -> BINARY(Plus...) modulo our operator spelling.
  const Value *V = Ctx.getBinary(
      BinaryOp::Add,
      Ctx.getBinary(BinaryOp::Mul, Ctx.getSVar("a"), Ctx.getSVar("b")),
      Ctx.getUnary(UnaryOp::Sin, Ctx.getSVar("c")));
  EXPECT_EQ(printValue(V), "BINARY(Add, BINARY(Mul, SVAR 'a', SVAR 'b'), "
                           "UNARY(Sin, SVAR 'c'))");
}

TEST_F(PrinterTest, ScalarConstants) {
  EXPECT_EQ(printValue(Ctx.getIntConst(6)), "SCALAR(integer_32,'6')");
  EXPECT_EQ(printValue(Ctx.getFloatConst(2.5)), "SCALAR(float_64,'2.5')");
  EXPECT_EQ(printValue(Ctx.getBoolConst(true)), "True");
  EXPECT_EQ(printValue(Ctx.getBoolConst(false)), "False");
}

TEST_F(PrinterTest, AVarAndFieldActions) {
  EXPECT_EQ(printValue(Ctx.getAVar("k", Ctx.getEverywhere())),
            "AVAR('k', everywhere)");
  const Value *Coord = Ctx.getLocalCoord("beta", 1);
  EXPECT_EQ(printValue(Coord), "local_under(domain 'beta',1)");
  const Value *Sub = Ctx.getAVar("a", Ctx.getSubscript({Coord, Coord}));
  EXPECT_EQ(printValue(Sub), "AVAR('a', subscript[local_under(domain "
                             "'beta',1), local_under(domain 'beta',1)])");
  const Value *Sec = Ctx.getAVar(
      "b", Ctx.getSection({SectionTriplet{false, 1, 32, 2}, SectionTriplet{}}));
  EXPECT_EQ(printValue(Sec), "AVAR('b', section[1:32:2, :])");
}

TEST_F(PrinterTest, FcnCall) {
  const Value *V = Ctx.getFcnCall(
      "cshift", {Ctx.getAVar("v", Ctx.getEverywhere()), Ctx.getIntConst(1),
                 Ctx.getIntConst(-1)});
  EXPECT_EQ(printValue(V), "FCNCALL('cshift', [AVAR('v', everywhere), "
                           "SCALAR(integer_32,'1'), SCALAR(integer_32,'-1')])");
}

TEST_F(PrinterTest, Decls) {
  // Appendix: "double precision m, n".
  const Decl *D = Ctx.getDeclSet({Ctx.getDecl("m", Ctx.getFloat64()),
                                  Ctx.getDecl("n", Ctx.getFloat64())});
  EXPECT_EQ(printDecl(D),
            "DECLSET[DECL('m', float_64), DECL('n', float_64)]");
}

/// Builds the Figure 8 program: L = 6; K = 2*K + 5 over domains alpha/beta.
static const Imp *buildFigure8(NIRContext &Ctx) {
  const Shape *Alpha = Ctx.getInterval(1, 128);
  const Shape *Beta =
      Ctx.getProdDom({Ctx.getDomainRef("alpha"), Ctx.getInterval(1, 64)});
  const Type *KTy = Ctx.getDField(Ctx.getDomainRef("beta"), Ctx.getInteger32());
  const Type *LTy =
      Ctx.getDField(Ctx.getDomainRef("alpha"), Ctx.getInteger32());
  const Decl *Decls =
      Ctx.getDeclSet({Ctx.getDecl("k", KTy), Ctx.getDecl("l", LTy)});

  std::vector<MoveClause> Clauses;
  Clauses.push_back({Ctx.getTrue(), Ctx.getIntConst(6),
                     Ctx.getAVar("l", Ctx.getEverywhere())});
  const Value *TwoK = Ctx.getBinary(BinaryOp::Mul, Ctx.getIntConst(2),
                                    Ctx.getAVar("k", Ctx.getEverywhere()));
  Clauses.push_back({Ctx.getTrue(),
                     Ctx.getBinary(BinaryOp::Add, TwoK, Ctx.getIntConst(5)),
                     Ctx.getAVar("k", Ctx.getEverywhere())});

  return Ctx.getWithDomain(
      "alpha", Alpha,
      Ctx.getWithDomain(
          "beta", Beta,
          Ctx.getWithDecl(Decls,
                          Ctx.getSequentially({Ctx.getMove(Clauses)}))));
}

TEST_F(PrinterTest, Figure8Program) {
  std::string Printed = printImp(buildFigure8(Ctx));
  // Spot-check the load-bearing lines of the paper's Figure 8 rendering.
  EXPECT_NE(Printed.find("WITH_DOMAIN(('alpha', interval(point 1, point "
                         "128)),"),
            std::string::npos)
      << Printed;
  EXPECT_NE(Printed.find("WITH_DOMAIN(('beta', prod_dom[domain 'alpha', "
                         "interval(point 1, point 64)]),"),
            std::string::npos);
  EXPECT_NE(Printed.find("DECL('k', dfield(shape=domain 'beta', "
                         "element=integer_32))"),
            std::string::npos);
  EXPECT_NE(
      Printed.find("(True, (SCALAR(integer_32,'6'), AVAR('l', everywhere)))"),
      std::string::npos);
  EXPECT_NE(Printed.find("BINARY(Add, BINARY(Mul, SCALAR(integer_32,'2'), "
                         "AVAR('k', everywhere)), SCALAR(integer_32,'5'))"),
            std::string::npos);
}

TEST_F(PrinterTest, ControlConstructs) {
  const Imp *Body = Ctx.getMove(
      {{Ctx.getTrue(), Ctx.getIntConst(1), Ctx.getSVar("x")}});
  const Imp *If = Ctx.getIfThenElse(
      Ctx.getBinary(BinaryOp::Lt, Ctx.getSVar("x"), Ctx.getIntConst(10)),
      Body, Ctx.getSkip());
  std::string Printed = printImp(If);
  EXPECT_NE(Printed.find("IFTHENELSE(BINARY(Less, SVAR 'x', "
                         "SCALAR(integer_32,'10')),"),
            std::string::npos);
  EXPECT_NE(Printed.find("SKIP"), std::string::npos);

  const Imp *Loop = Ctx.getDo(Ctx.getDomainRef("beta"), Body);
  EXPECT_NE(printImp(Loop).find("DO(domain 'beta',"), std::string::npos);
}

TEST_F(PrinterTest, StructuralEquality) {
  const Value *A = Ctx.getBinary(BinaryOp::Add, Ctx.getSVar("x"),
                                 Ctx.getIntConst(1));
  const Value *B = Ctx.getBinary(BinaryOp::Add, Ctx.getSVar("x"),
                                 Ctx.getIntConst(1));
  const Value *C = Ctx.getBinary(BinaryOp::Add, Ctx.getSVar("y"),
                                 Ctx.getIntConst(1));
  EXPECT_TRUE(valuesEqual(A, B));
  EXPECT_FALSE(valuesEqual(A, C));
  EXPECT_TRUE(impsEqual(buildFigure8(Ctx), buildFigure8(Ctx)));
}

TEST_F(PrinterTest, FusedMovePrintsDeterministically) {
  // The shape the cross-statement fusion pass produces: one MOVE whose
  // source is a deep chain of madd-shaped BINARYs over the same fields.
  // There is no NIR parser, so "round-trips" here means: printing is a
  // faithful function of structure — two independently built copies of a
  // fused tree print byte-identically (and compare equal structurally),
  // while a tree differing only in operand order prints differently.
  auto BuildChain = [&](NIRContext &C, const char *Seed) {
    const Value *Acc = C.getBinary(
        BinaryOp::Sub, C.getAVar(Seed, C.getEverywhere()),
        C.getAVar("un", C.getEverywhere()));
    const char *Flds[2] = {"u", "un"};
    for (int I = 0; I < 6; ++I)
      Acc = C.getBinary(
          BinaryOp::Add,
          C.getBinary(BinaryOp::Mul, Acc, C.getFloatConst(0.25)),
          C.getAVar(Flds[I % 2], C.getEverywhere()));
    return C.getMove(
        {{C.getTrue(), Acc, C.getAVar("unew", C.getEverywhere())}});
  };
  NIRContext Other;
  const Imp *M1 = BuildChain(Ctx, "u");
  const Imp *M2 = BuildChain(Other, "u");
  EXPECT_TRUE(impsEqual(M1, M2));
  EXPECT_EQ(printImp(M1), printImp(M2));
  // Printing the same node twice is stable.
  EXPECT_EQ(printImp(M1), printImp(M1));
  // Every chain link survives in the printout: six Mul-by-0.25 links
  // plus the seed Sub, all inside a single MOVE.
  const std::string Text = printImp(M1);
  EXPECT_EQ(Text.find("MOVE"), Text.rfind("MOVE"));
  size_t Links = 0;
  for (size_t Pos = Text.find("BINARY(Mul"); Pos != std::string::npos;
       Pos = Text.find("BINARY(Mul", Pos + 1))
    ++Links;
  EXPECT_EQ(Links, 6u);
  EXPECT_NE(Text.find("BINARY(Sub"), std::string::npos);
  // A different association order is a different program and must not
  // print the same.
  const Imp *M3 = BuildChain(Ctx, "un");
  EXPECT_FALSE(impsEqual(M1, M3));
  EXPECT_NE(printImp(M1), printImp(M3));
}

} // namespace
