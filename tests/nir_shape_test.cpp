//===- tests/nir_shape_test.cpp - shape algebra unit tests ------------------===//
//
// Part of the Fortran-90-Y reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "nir/NIRContext.h"
#include "nir/Shape.h"

#include <gtest/gtest.h>

using namespace f90y;
using namespace f90y::nir;

namespace {

class ShapeTest : public ::testing::Test {
protected:
  NIRContext Ctx;
  DomainEnv Env;
};

TEST_F(ShapeTest, PointHasNoExtents) {
  std::vector<ShapeExtent> Exts;
  ASSERT_TRUE(shapeExtents(Ctx.getPoint(5), Env, Exts));
  EXPECT_TRUE(Exts.empty());
  EXPECT_EQ(shapeNumElements(Ctx.getPoint(5), Env), 1);
  EXPECT_EQ(rankOf(Ctx.getPoint(5), Env), 0);
}

TEST_F(ShapeTest, IntervalExtent) {
  const Shape *S = Ctx.getInterval(1, 128);
  std::vector<ShapeExtent> Exts;
  ASSERT_TRUE(shapeExtents(S, Env, Exts));
  ASSERT_EQ(Exts.size(), 1u);
  EXPECT_EQ(Exts[0].Lo, 1);
  EXPECT_EQ(Exts[0].Hi, 128);
  EXPECT_FALSE(Exts[0].Serial);
  EXPECT_EQ(shapeNumElements(S, Env), 128);
}

TEST_F(ShapeTest, SerialIntervalIsMarkedSerial) {
  const Shape *S = Ctx.getSerialInterval(1, 64);
  std::vector<ShapeExtent> Exts;
  ASSERT_TRUE(shapeExtents(S, Env, Exts));
  ASSERT_EQ(Exts.size(), 1u);
  EXPECT_TRUE(Exts[0].Serial);
  EXPECT_FALSE(shapeFullyParallel(S, Env));
}

TEST_F(ShapeTest, ProdDomFlattens) {
  // The paper's 'beta' = prod_dom[alpha(1..128), interval(1..64)].
  const Shape *Alpha = Ctx.getInterval(1, 128);
  const Shape *Beta = Ctx.getProdDom({Alpha, Ctx.getInterval(1, 64)});
  EXPECT_EQ(rankOf(Beta, Env), 2);
  EXPECT_EQ(shapeNumElements(Beta, Env), 128 * 64);
  EXPECT_TRUE(shapeFullyParallel(Beta, Env));
}

TEST_F(ShapeTest, NestedProdDomFlattens) {
  const Shape *Inner = Ctx.getProdDom({Ctx.getInterval(1, 4),
                                       Ctx.getInterval(1, 8)});
  const Shape *Outer = Ctx.getProdDom({Inner, Ctx.getInterval(1, 2)});
  EXPECT_EQ(rankOf(Outer, Env), 3);
  EXPECT_EQ(shapeNumElements(Outer, Env), 4 * 8 * 2);
}

TEST_F(ShapeTest, DomainRefResolvesThroughEnv) {
  const Shape *Alpha = Ctx.getInterval(1, 128);
  Env.bind("alpha", Alpha);
  const Shape *Ref = Ctx.getDomainRef("alpha");
  EXPECT_EQ(resolveShape(Ref, Env), Alpha);
  EXPECT_EQ(shapeNumElements(Ref, Env), 128);
}

TEST_F(ShapeTest, UnboundDomainRefFailsToResolve) {
  const Shape *Ref = Ctx.getDomainRef("gamma");
  EXPECT_EQ(resolveShape(Ref, Env), nullptr);
  EXPECT_EQ(shapeNumElements(Ref, Env), -1);
  EXPECT_EQ(rankOf(Ref, Env), -1);
}

TEST_F(ShapeTest, ChainedDomainRefsResolve) {
  const Shape *Alpha = Ctx.getInterval(1, 16);
  Env.bind("alpha", Alpha);
  Env.bind("beta", Ctx.getDomainRef("alpha"));
  EXPECT_EQ(resolveShape(Ctx.getDomainRef("beta"), Env), Alpha);
}

TEST_F(ShapeTest, ProdDomOfRefsResolves) {
  Env.bind("alpha", Ctx.getInterval(1, 128));
  const Shape *Beta =
      Ctx.getProdDom({Ctx.getDomainRef("alpha"), Ctx.getInterval(1, 64)});
  EXPECT_EQ(shapeNumElements(Beta, Env), 128 * 64);
}

TEST_F(ShapeTest, IdenticalShapesCompareEqual) {
  const Shape *A = Ctx.getProdDom({Ctx.getInterval(1, 32),
                                   Ctx.getInterval(1, 32)});
  const Shape *B = Ctx.getProdDom({Ctx.getInterval(1, 32),
                                   Ctx.getInterval(1, 32)});
  EXPECT_TRUE(shapesIdentical(A, B, Env));
  EXPECT_TRUE(shapesConformable(A, B, Env));
}

TEST_F(ShapeTest, ConformableToleratesDifferentBounds) {
  // Same sizes, different bounds: conformable but not identical.
  const Shape *A = Ctx.getInterval(1, 32);
  const Shape *B = Ctx.getInterval(33, 64);
  EXPECT_FALSE(shapesIdentical(A, B, Env));
  EXPECT_TRUE(shapesConformable(A, B, Env));
}

TEST_F(ShapeTest, DifferentSizesNotConformable) {
  const Shape *A = Ctx.getInterval(1, 32);
  const Shape *B = Ctx.getInterval(1, 64);
  EXPECT_FALSE(shapesConformable(A, B, Env));
}

TEST_F(ShapeTest, DifferentRanksNotConformable) {
  const Shape *A = Ctx.getInterval(1, 32);
  const Shape *B = Ctx.getProdDom({Ctx.getInterval(1, 32),
                                   Ctx.getInterval(1, 1)});
  EXPECT_FALSE(shapesConformable(A, B, Env));
}

TEST_F(ShapeTest, SerialVsParallelNotIdentical) {
  const Shape *A = Ctx.getInterval(1, 32);
  const Shape *B = Ctx.getSerialInterval(1, 32);
  EXPECT_FALSE(shapesIdentical(A, B, Env));
  // Conformability only checks sizes; serial-ness is an execution property.
  EXPECT_TRUE(shapesConformable(A, B, Env));
}

TEST_F(ShapeTest, ShadowedBindingRestores) {
  const Shape *Outer = Ctx.getInterval(1, 8);
  const Shape *Inner = Ctx.getInterval(1, 4);
  const Shape *Old = Env.bind("d", Outer);
  EXPECT_EQ(Old, nullptr);
  const Shape *Saved = Env.bind("d", Inner);
  EXPECT_EQ(Saved, Outer);
  EXPECT_EQ(Env.lookup("d"), Inner);
  Env.restore("d", Saved);
  EXPECT_EQ(Env.lookup("d"), Outer);
  Env.restore("d", Old);
  EXPECT_EQ(Env.lookup("d"), nullptr);
}

TEST_F(ShapeTest, SectionTripletCount) {
  SectionTriplet All;
  EXPECT_EQ(All.count(1, 32), 32);
  SectionTriplet Odd{false, 1, 32, 2};
  EXPECT_EQ(Odd.count(1, 32), 16);
  SectionTriplet Even{false, 2, 32, 2};
  EXPECT_EQ(Even.count(1, 32), 16);
  SectionTriplet Single{false, 5, 5, 1};
  EXPECT_EQ(Single.count(1, 32), 1);
  SectionTriplet Empty{false, 6, 5, 1};
  EXPECT_EQ(Empty.count(1, 32), 0);
  SectionTriplet Backward{false, 10, 1, -3};
  EXPECT_EQ(Backward.count(1, 32), 4);
}

} // namespace
