//===- tests/nir_verifier_test.cpp - NIR verifier unit tests ----------------===//
//
// Part of the Fortran-90-Y reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "nir/NIRContext.h"
#include "nir/Verifier.h"

#include <gtest/gtest.h>

using namespace f90y;
using namespace f90y::nir;

namespace {

class VerifierTest : public ::testing::Test {
protected:
  NIRContext Ctx;
  DiagnosticEngine Diags;

  /// Wraps \p Body in a declaration of scalar 'x' and 1-d array 'a' over a
  /// bound domain 'd' (1..8).
  const Imp *withStdEnv(const Imp *Body) {
    const Decl *Decls = Ctx.getDeclSet(
        {Ctx.getDecl("x", Ctx.getFloat64()),
         Ctx.getDecl("a", Ctx.getDField(Ctx.getDomainRef("d"),
                                        Ctx.getFloat64()))});
    return Ctx.getWithDomain("d", Ctx.getInterval(1, 8),
                             Ctx.getWithDecl(Decls, Body));
  }
};

TEST_F(VerifierTest, AcceptsWellFormedProgram) {
  const Imp *M = Ctx.getMove({{Ctx.getTrue(), Ctx.getSVar("x"),
                               Ctx.getAVar("a", Ctx.getEverywhere())}});
  EXPECT_TRUE(verify(withStdEnv(M), Diags)) << Diags.str();
}

TEST_F(VerifierTest, RejectsUndeclaredScalar) {
  const Imp *M = Ctx.getMove({{Ctx.getTrue(), Ctx.getSVar("nope"),
                               Ctx.getAVar("a", Ctx.getEverywhere())}});
  EXPECT_FALSE(verify(withStdEnv(M), Diags));
  EXPECT_NE(Diags.str().find("undeclared scalar 'nope'"), std::string::npos);
}

TEST_F(VerifierTest, RejectsUndeclaredArray) {
  const Imp *M = Ctx.getMove({{Ctx.getTrue(), Ctx.getIntConst(0),
                               Ctx.getAVar("ghost", Ctx.getEverywhere())}});
  EXPECT_FALSE(verify(withStdEnv(M), Diags));
  EXPECT_NE(Diags.str().find("undeclared array 'ghost'"), std::string::npos);
}

TEST_F(VerifierTest, RejectsSVarOfFieldBinding) {
  const Imp *M = Ctx.getMove(
      {{Ctx.getTrue(), Ctx.getSVar("a"), Ctx.getSVar("x")}});
  EXPECT_FALSE(verify(withStdEnv(M), Diags));
  EXPECT_NE(Diags.str().find("refers to a dfield binding"),
            std::string::npos);
}

TEST_F(VerifierTest, RejectsAVarOfScalarBinding) {
  const Imp *M = Ctx.getMove({{Ctx.getTrue(), Ctx.getIntConst(0),
                               Ctx.getAVar("x", Ctx.getEverywhere())}});
  EXPECT_FALSE(verify(withStdEnv(M), Diags));
  EXPECT_NE(Diags.str().find("refers to a scalar binding"),
            std::string::npos);
}

TEST_F(VerifierTest, RejectsUnboundDomainRef) {
  const Decl *D = Ctx.getDecl(
      "b", Ctx.getDField(Ctx.getDomainRef("unbound"), Ctx.getFloat64()));
  const Imp *Prog = Ctx.getWithDecl(D, Ctx.getSkip());
  EXPECT_FALSE(verify(Prog, Diags));
  EXPECT_NE(Diags.str().find("unbound domain 'unbound'"), std::string::npos);
}

TEST_F(VerifierTest, RejectsSubscriptArityMismatch) {
  const Value *Idx = Ctx.getIntConst(1);
  // 'a' has rank 1; subscript with two indices must be rejected.
  const Imp *M =
      Ctx.getMove({{Ctx.getTrue(), Ctx.getIntConst(0),
                    Ctx.getAVar("a", Ctx.getSubscript({Idx, Idx}))}});
  EXPECT_FALSE(verify(withStdEnv(M), Diags));
  EXPECT_NE(Diags.str().find("2 indices but rank is 1"), std::string::npos);
}

TEST_F(VerifierTest, RejectsSectionArityMismatch) {
  const Imp *M = Ctx.getMove(
      {{Ctx.getTrue(), Ctx.getIntConst(0),
        Ctx.getAVar("a", Ctx.getSection({SectionTriplet{},
                                         SectionTriplet{}}))}});
  EXPECT_FALSE(verify(withStdEnv(M), Diags));
  EXPECT_NE(Diags.str().find("2 triplets but rank is 1"), std::string::npos);
}

TEST_F(VerifierTest, RejectsMoveToNonStorage) {
  const Imp *M = Ctx.getMove(
      {{Ctx.getTrue(), Ctx.getIntConst(0), Ctx.getIntConst(1)}});
  EXPECT_FALSE(verify(withStdEnv(M), Diags));
  EXPECT_NE(Diags.str().find("MOVE destination must be an SVAR or AVAR"),
            std::string::npos);
}

TEST_F(VerifierTest, RejectsLocalUnderOutOfRange) {
  // Domain 'd' has rank 1; dimension 2 is out of range.
  const Imp *M = Ctx.getMove({{Ctx.getTrue(), Ctx.getLocalCoord("d", 2),
                               Ctx.getAVar("a", Ctx.getEverywhere())}});
  EXPECT_FALSE(verify(withStdEnv(M), Diags));
  EXPECT_NE(Diags.str().find("out of range"), std::string::npos);
}

TEST_F(VerifierTest, RejectsLocalUnderOfUnboundDomain) {
  const Imp *M = Ctx.getMove({{Ctx.getTrue(), Ctx.getLocalCoord("ghost", 1),
                               Ctx.getAVar("a", Ctx.getEverywhere())}});
  EXPECT_FALSE(verify(withStdEnv(M), Diags));
  EXPECT_NE(Diags.str().find("unbound domain 'ghost'"), std::string::npos);
}

TEST_F(VerifierTest, RejectsEmptyInterval) {
  const Imp *Prog =
      Ctx.getWithDomain("e", Ctx.getInterval(5, 4), Ctx.getSkip());
  EXPECT_FALSE(verify(Prog, Diags));
  EXPECT_NE(Diags.str().find("empty interval"), std::string::npos);
}

TEST_F(VerifierTest, ScopeRestoresAfterWithDecl) {
  // Inner decl of 'y' must not leak to the sibling action.
  const Decl *Inner = Ctx.getDecl("y", Ctx.getFloat64());
  const Imp *UseInner = Ctx.getMove(
      {{Ctx.getTrue(), Ctx.getIntConst(1), Ctx.getSVar("y")}});
  const Imp *UseOuter = Ctx.getMove(
      {{Ctx.getTrue(), Ctx.getSVar("y"), Ctx.getSVar("x")}});
  const Imp *Seq = Ctx.getSequentially(
      {Ctx.getWithDecl(Inner, UseInner), UseOuter});
  EXPECT_FALSE(verify(withStdEnv(Seq), Diags));
  EXPECT_NE(Diags.str().find("undeclared scalar 'y'"), std::string::npos);
}

TEST_F(VerifierTest, DomainShadowingIsLexical) {
  // Inner 'd' of rank 2 makes local_under(d,2) legal inside, and the outer
  // rank-1 'd' is restored afterwards.
  const Shape *Inner2D =
      Ctx.getProdDom({Ctx.getInterval(1, 4), Ctx.getInterval(1, 4)});
  const Imp *UseDim2 = Ctx.getMove({{Ctx.getTrue(), Ctx.getLocalCoord("d", 2),
                                     Ctx.getSVar("x")}});
  const Imp *Ok = Ctx.getWithDomain("d", Inner2D, UseDim2);
  EXPECT_TRUE(verify(withStdEnv(Ok), Diags)) << Diags.str();

  Diags.clear();
  const Imp *Bad = Ctx.getSequentially(
      {Ctx.getWithDomain("d", Inner2D, UseDim2), UseDim2});
  EXPECT_FALSE(verify(withStdEnv(Bad), Diags));
}

// --- CanonicalComm (extract-comm post-condition / fusion legality) ------

TEST_F(VerifierTest, CanonicalCommAcceptsFusedComputationMove) {
  // The shape the fusion pass produces: one MOVE whose source is a deep
  // elementwise tree over the same field, with no comm call anywhere.
  const Value *A = Ctx.getAVar("a", Ctx.getEverywhere());
  const Value *Chain = A;
  for (int I = 0; I < 8; ++I)
    Chain = Ctx.getBinary(BinaryOp::Add,
                          Ctx.getBinary(BinaryOp::Mul, Chain,
                                        Ctx.getFloatConst(0.25)),
                          A);
  const Imp *M = Ctx.getMove(
      {{Ctx.getTrue(), Chain, Ctx.getAVar("a", Ctx.getEverywhere())}});
  EXPECT_TRUE(verify(withStdEnv(M), Diags, VerifyOptions{true}))
      << Diags.str();
}

TEST_F(VerifierTest, CanonicalCommAcceptsWholeClauseCommCall) {
  // A comm intrinsic as the *entire* clause source is the canonical form
  // extract-comm leaves behind; strict mode must keep accepting it.
  const Value *Shift =
      Ctx.getFcnCall("cshift", {Ctx.getAVar("a", Ctx.getEverywhere()),
                                Ctx.getIntConst(1), Ctx.getIntConst(1)});
  const Imp *M = Ctx.getMove(
      {{Ctx.getTrue(), Shift, Ctx.getAVar("a", Ctx.getEverywhere())}});
  EXPECT_TRUE(verify(withStdEnv(M), Diags, VerifyOptions{true}))
      << Diags.str();
}

TEST_F(VerifierTest, CanonicalCommRejectsCommNestedInFusedSource) {
  // A hand-built "fusion across a communication boundary": the producer
  // (a cshift) was absorbed into the consumer's expression tree. Strict
  // mode must reject it; the default (lenient) mode must still accept it
  // because raw lowered NIR legitimately nests comm calls.
  const Value *Shift =
      Ctx.getFcnCall("cshift", {Ctx.getAVar("a", Ctx.getEverywhere()),
                                Ctx.getIntConst(1), Ctx.getIntConst(1)});
  const Value *Fused = Ctx.getBinary(
      BinaryOp::Add, Ctx.getAVar("a", Ctx.getEverywhere()),
      Ctx.getBinary(BinaryOp::Mul, Shift, Ctx.getFloatConst(0.25)));
  const Imp *M = Ctx.getMove(
      {{Ctx.getTrue(), Fused, Ctx.getAVar("a", Ctx.getEverywhere())}});
  EXPECT_TRUE(verify(withStdEnv(M), Diags)) << Diags.str();
  Diags.clear();
  EXPECT_FALSE(verify(withStdEnv(M), Diags, VerifyOptions{true}));
  EXPECT_NE(Diags.str().find("communication intrinsic 'cshift' nested "
                             "inside a computational expression"),
            std::string::npos)
      << Diags.str();
}

TEST_F(VerifierTest, CanonicalCommRejectsCommInGuard) {
  const Value *Any =
      Ctx.getFcnCall("any", {Ctx.getAVar("a", Ctx.getEverywhere())});
  const Imp *M = Ctx.getMove({{Any, Ctx.getFloatConst(0.0),
                               Ctx.getAVar("a", Ctx.getEverywhere())}});
  EXPECT_FALSE(verify(withStdEnv(M), Diags, VerifyOptions{true}));
  EXPECT_NE(Diags.str().find("nested inside a MOVE guard"),
            std::string::npos)
      << Diags.str();
}

TEST_F(VerifierTest, CanonicalCommRejectsCommInCommOperand) {
  // Even when the clause source *is* a comm call, its operands must be
  // comm-free: cshift(cshift(a,...),...) is not canonical.
  const Value *Inner =
      Ctx.getFcnCall("cshift", {Ctx.getAVar("a", Ctx.getEverywhere()),
                                Ctx.getIntConst(1), Ctx.getIntConst(1)});
  const Value *Outer =
      Ctx.getFcnCall("cshift",
                     {Inner, Ctx.getIntConst(-1), Ctx.getIntConst(1)});
  const Imp *M = Ctx.getMove(
      {{Ctx.getTrue(), Outer, Ctx.getAVar("a", Ctx.getEverywhere())}});
  EXPECT_FALSE(verify(withStdEnv(M), Diags, VerifyOptions{true}));
  EXPECT_NE(Diags.str().find("nested inside a communication operand"),
            std::string::npos)
      << Diags.str();
}

TEST_F(VerifierTest, CanonicalCommCoversEveryIntrinsicName) {
  // Pins the comm/reduction name list in Verifier.cpp (duplicated from
  // lower): every name must trip strict mode when nested, and a
  // non-comm elementwise intrinsic ("merge") must not.
  const char *Comm[] = {"cshift", "eoshift", "transpose", "spread",
                        "sum",    "product", "maxval",    "minval",
                        "count",  "any",     "all"};
  for (const char *Name : Comm) {
    Diags.clear();
    const Value *Call =
        Ctx.getFcnCall(Name, {Ctx.getAVar("a", Ctx.getEverywhere())});
    const Value *Nested =
        Ctx.getBinary(BinaryOp::Add, Call, Ctx.getFloatConst(1.0));
    const Imp *M = Ctx.getMove(
        {{Ctx.getTrue(), Nested, Ctx.getAVar("a", Ctx.getEverywhere())}});
    EXPECT_FALSE(verify(withStdEnv(M), Diags, VerifyOptions{true}))
        << "strict mode accepted nested '" << Name << "'";
    EXPECT_NE(Diags.str().find(std::string("communication intrinsic '") +
                               Name + "'"),
              std::string::npos)
        << Diags.str();
  }
  Diags.clear();
  const Value *Merge = Ctx.getFcnCall(
      "merge", {Ctx.getAVar("a", Ctx.getEverywhere()),
                Ctx.getFloatConst(0.0), Ctx.getTrue()});
  const Value *Nested =
      Ctx.getBinary(BinaryOp::Add, Merge, Ctx.getFloatConst(1.0));
  const Imp *M = Ctx.getMove(
      {{Ctx.getTrue(), Nested, Ctx.getAVar("a", Ctx.getEverywhere())}});
  EXPECT_TRUE(verify(withStdEnv(M), Diags, VerifyOptions{true}))
      << Diags.str();
}

} // namespace
