//===- tests/observe_test.cpp - observability subsystem unit tests ----------===//
//
// Part of the Fortran-90-Y reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests the observe/ subsystem: JSON rendering/parsing, the metrics
/// registry, dual-clock trace recording (including the cycle-span tiling
/// invariant the f90y-trace summarizer relies on), and the end-to-end
/// determinism contract: a traced run exports byte-identical
/// (wall-normalized) trace and metrics content at every host thread
/// count, and tracing never changes the simulation itself.
///
//===----------------------------------------------------------------------===//

#include "driver/Driver.h"
#include "observe/Json.h"
#include "observe/Metrics.h"
#include "observe/Trace.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <limits>
#include <string>
#include <vector>

using namespace f90y;
using namespace f90y::observe;

//===--------------------------------------------------------------------===//
// JSON rendering
//===--------------------------------------------------------------------===//

TEST(ObserveJson, NumberRendersIntegralDoublesWithoutNoise) {
  EXPECT_EQ(json::number(0.0), "0");
  EXPECT_EQ(json::number(42.0), "42");
  EXPECT_EQ(json::number(1.5), "1.5");
  EXPECT_EQ(json::number(-3.25), "-3.25");
}

TEST(ObserveJson, NumberRoundTripsDoubles) {
  for (double V : {0.1, 1.0 / 3.0, 6.02214076e23, 5e-324, 1e6, 7.0}) {
    std::string S = json::number(V);
    EXPECT_EQ(std::strtod(S.c_str(), nullptr), V) << S;
    // printf-style three-digit exponents ("1e+006") are not valid in some
    // consumers and never round-trip shorter.
    EXPECT_EQ(S.find("e+0"), std::string::npos) << S;
  }
}

TEST(ObserveJson, NonFiniteRendersAsNull) {
  EXPECT_EQ(json::number(std::numeric_limits<double>::quiet_NaN()), "null");
  EXPECT_EQ(json::number(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(json::number(-std::numeric_limits<double>::infinity()), "null");
}

TEST(ObserveJson, IntegerOverloadsAreExact) {
  EXPECT_EQ(json::number(std::uint64_t(18446744073709551615ull)),
            "18446744073709551615");
  EXPECT_EQ(json::number(std::int64_t(-9007199254740993ll)),
            "-9007199254740993");
}

TEST(ObserveJson, QuoteEscapes) {
  EXPECT_EQ(json::quote("plain"), "\"plain\"");
  EXPECT_EQ(json::quote("a\"b\\c"), "\"a\\\"b\\\\c\"");
  EXPECT_EQ(json::quote("tab\tnl\n"), "\"tab\\tnl\\n\"");
}

//===--------------------------------------------------------------------===//
// JSON parsing
//===--------------------------------------------------------------------===//

TEST(ObserveJson, ParsesNestedValue) {
  json::Value V;
  std::string Error;
  ASSERT_TRUE(json::parse(
      "{\"a\": [1, 2.5, \"x\"], \"b\": {\"c\": true, \"d\": null}} ", V,
      Error))
      << Error;
  ASSERT_TRUE(V.isObject());
  const json::Value *A = V.get("a");
  ASSERT_NE(A, nullptr);
  ASSERT_TRUE(A->isArray());
  ASSERT_EQ(A->Arr.size(), 3u);
  EXPECT_EQ(A->Arr[1].Num, 2.5);
  EXPECT_EQ(A->Arr[2].Str, "x");
  const json::Value *B = V.get("b");
  ASSERT_NE(B, nullptr);
  EXPECT_TRUE(B->get("d")->isNull());
  EXPECT_EQ(V.numOr("missing", -1.0), -1.0);
  EXPECT_EQ(B->strOr("c", "dflt"), "dflt"); // Bool is not a string.
}

TEST(ObserveJson, ParseRejectsMalformedInput) {
  json::Value V;
  std::string Error;
  for (const char *Bad : {"", "{", "[1,]", "tru", "{\"a\":}", "1 2",
                          "\"unterminated"}) {
    EXPECT_FALSE(json::parse(Bad, V, Error)) << Bad;
    EXPECT_FALSE(Error.empty()) << Bad;
  }
}

TEST(ObserveJson, ParseRoundTripsRenderedNumbers) {
  json::Value V;
  std::string Error;
  double X = 1.0 / 3.0;
  ASSERT_TRUE(json::parse(json::number(X), V, Error)) << Error;
  ASSERT_TRUE(V.isNumber());
  EXPECT_EQ(V.Num, X);
}

//===--------------------------------------------------------------------===//
// Metrics registry
//===--------------------------------------------------------------------===//

TEST(ObserveMetrics, KindsAccumulateCorrectly) {
  MetricsRegistry M;
  M.count("ops");
  M.count("ops", 4);
  M.countCycles("cyc", 1.5);
  M.countCycles("cyc", 2.5);
  M.gauge("g", 7);
  M.gauge("g", 9); // Last write wins.
  M.observe("h", 3);
  M.observe("h", 5);
  EXPECT_EQ(M.size(), 4u);
  EXPECT_EQ(M.value("ops"), 5.0);
  EXPECT_EQ(M.value("cyc"), 4.0);
  EXPECT_EQ(M.value("g"), 9.0);
  EXPECT_EQ(M.value("h"), 8.0); // Histogram sum.
  EXPECT_EQ(M.value("absent"), 0.0);
}

TEST(ObserveMetrics, ExportIsSortedAndParseable) {
  MetricsRegistry M;
  M.count("z.last");
  M.gauge("a.first", 1);
  M.observe("m.mid", 4);
  std::string Text = M.exportText();
  EXPECT_LT(Text.find("a.first"), Text.find("m.mid"));
  EXPECT_LT(Text.find("m.mid"), Text.find("z.last"));

  json::Value V;
  std::string Error;
  ASSERT_TRUE(json::parse(M.exportJson(), V, Error)) << Error;
  const json::Value *Metrics = V.get("metrics");
  ASSERT_NE(Metrics, nullptr);
  ASSERT_TRUE(Metrics->isObject());
  EXPECT_EQ(Metrics->Obj.size(), 3u);
  EXPECT_EQ(Metrics->get("z.last")->numOr("value", -1), 1.0);
  EXPECT_EQ(Metrics->get("z.last")->strOr("type", ""), "counter");
}

TEST(ObserveMetrics, ClearEmpties) {
  MetricsRegistry M;
  M.count("x");
  M.clear();
  EXPECT_EQ(M.size(), 0u);
  EXPECT_EQ(M.value("x"), 0.0);
}

//===--------------------------------------------------------------------===//
// Trace recording
//===--------------------------------------------------------------------===//

namespace {

/// Parses an export and returns the non-metadata events.
std::vector<const json::Value *> traceEvents(const std::string &Json,
                                             json::Value &Storage) {
  std::string Error;
  EXPECT_TRUE(json::parse(Json, Storage, Error)) << Error;
  std::vector<const json::Value *> Out;
  const json::Value *Events = Storage.get("traceEvents");
  EXPECT_NE(Events, nullptr);
  if (Events)
    for (const json::Value &E : Events->Arr)
      if (E.strOr("ph", "") != "M")
        Out.push_back(&E);
  return Out;
}

} // namespace

TEST(ObserveTrace, NullRecorderIsSafe) {
  WallSpan S(nullptr, "noop", "test");
  S.addArg(arg("k", std::int64_t(1))); // Must not crash or allocate events.
}

TEST(ObserveTrace, WallSpansNestAndExport) {
  TraceRecorder R;
  {
    WallSpan Outer(&R, "outer", "phase");
    WallSpan Inner(&R, "inner", "phase");
    Inner.addArg(arg("n", std::uint64_t(3)));
  }
  R.wallInstant("mark", "phase");
  EXPECT_EQ(R.eventCount(), 3u);

  json::Value V;
  auto Events = traceEvents(R.exportJson(), V);
  ASSERT_EQ(Events.size(), 3u);
  for (const json::Value *E : Events)
    EXPECT_EQ(E->numOr("pid", -1), 1.0); // All wall-domain.
  // Events export in begin order: outer opened first.
  EXPECT_EQ(Events[0]->strOr("name", ""), "outer");
  EXPECT_EQ(Events[1]->strOr("name", ""), "inner");
  EXPECT_EQ(Events[1]->get("args")->numOr("n", -1), 3.0);
  EXPECT_EQ(Events[2]->strOr("ph", ""), "i");
}

TEST(ObserveTrace, CycleSpansTileTheLedger) {
  TraceRecorder R;
  R.resetCycleCursor();
  R.cycleSpan("a", "peac", 10, 30); // Gap [0,10) becomes a host span.
  R.cycleSpan("b", "comm", 30, 45); // Adjacent: no gap.
  R.cycleInstant("retry", "fault", 45);
  R.cycleSpan("c", "peac", 50, 60); // Gap [45,50).
  R.closeCycles(100);               // Tail [60,100).

  json::Value V;
  auto Events = traceEvents(R.exportJson(), V);
  double Sum = 0;
  unsigned HostSpans = 0;
  for (const json::Value *E : Events) {
    ASSERT_EQ(E->numOr("pid", -1), 2.0);
    if (E->strOr("ph", "") != "X")
      continue;
    Sum += E->numOr("dur", 0);
    if (E->strOr("name", "") == "host")
      ++HostSpans;
  }
  EXPECT_EQ(Sum, 100.0); // Spans tile [0, closeCycles) exactly.
  EXPECT_EQ(HostSpans, 3u);
  EXPECT_EQ(R.cycleCursor(), 100.0);

  R.resetCycleCursor();
  EXPECT_EQ(R.cycleCursor(), 0.0);
}

TEST(ObserveTrace, NormalizedExportHidesWallTimes) {
  // Two recorders doing the same work at different real times must export
  // byte-identically once wall values are normalized.
  auto Record = [](TraceRecorder &R) {
    {
      WallSpan S(&R, "compile", "phase");
      S.addArg(arg("tokens", std::uint64_t(9)));
    }
    R.resetCycleCursor();
    R.cycleSpan("kernel", "peac", 0, 64,
                {arg("pes", std::int64_t(2048))});
    R.closeCycles(80);
  };
  TraceRecorder A, B;
  Record(A);
  Record(B);
  EXPECT_EQ(A.exportJson(/*NormalizeWall=*/true),
            B.exportJson(/*NormalizeWall=*/true));
}

TEST(ObserveTrace, ClearResetsEverything) {
  TraceRecorder R;
  R.wallInstant("x", "t");
  R.cycleSpan("a", "peac", 0, 5);
  R.clear();
  EXPECT_EQ(R.eventCount(), 0u);
  EXPECT_EQ(R.cycleCursor(), 0.0);
}

//===--------------------------------------------------------------------===//
// End-to-end: traced compilation + simulated run
//===--------------------------------------------------------------------===//

namespace {

struct TracedRun {
  std::string NormalizedTrace;
  std::string MetricsText;
  std::string Output;
  double LedgerTotal = 0;
  double CycleSpanSum = 0;
  bool SawComm = false, SawPeac = false;
};

/// Drops `peac.engine.*` lines from a metrics export. The routine-cache
/// hit/miss counters reflect host-side cache history (a run may hit on
/// routines a previous run in the same process compiled), so comparisons
/// of metric content *across runs* normalize them away; everything else
/// in the export describes the simulated machine and must match exactly.
std::string stripEngineMetrics(const std::string &Text) {
  std::string Out;
  size_t Pos = 0;
  while (Pos < Text.size()) {
    size_t End = Text.find('\n', Pos);
    if (End == std::string::npos)
      End = Text.size();
    else
      ++End;
    std::string Line = Text.substr(Pos, End - Pos);
    if (Line.rfind("peac.engine.", 0) != 0)
      Out += Line;
    Pos = End;
  }
  return Out;
}

TracedRun runTraced(const std::string &Source, unsigned Threads) {
  TracedRun Out;
  TraceRecorder Trace;
  MetricsRegistry Metrics;
  cm2::CostModel Machine;
  driver::Compilation C(
      driver::CompileOptions::forProfile(driver::Profile::F90Y, Machine));
  C.setObservability(&Trace, &Metrics);
  EXPECT_TRUE(C.compile(Source)) << C.diags().str();
  driver::ExecutionOptions EOpts;
  EOpts.Threads = Threads;
  EOpts.Trace = &Trace;
  EOpts.Metrics = &Metrics;
  driver::Execution Exec(Machine, EOpts);
  auto Report = Exec.run(C.artifacts().Compiled.Program);
  EXPECT_TRUE(Report.has_value()) << Exec.diags().str();
  if (!Report)
    return Out;
  Out.Output = Report->Output;
  Out.LedgerTotal = Report->Ledger.total();
  Out.NormalizedTrace = Trace.exportJson(/*NormalizeWall=*/true);
  Out.MetricsText = stripEngineMetrics(Metrics.exportText());

  json::Value V;
  for (const json::Value *E : traceEvents(Out.NormalizedTrace, V)) {
    if (E->numOr("pid", 0) != 2 || E->strOr("ph", "") != "X")
      continue;
    Out.CycleSpanSum += E->numOr("dur", 0);
    std::string Cat = E->strOr("cat", "");
    Out.SawComm |= Cat == "comm";
    Out.SawPeac |= Cat == "peac";
  }
  return Out;
}

const char *kTracedProgram = "program p\n"
                             "real u(64), v(64)\n"
                             "integer i\n"
                             "u = 1.0\n"
                             "do i = 1, 4\n"
                             "  v = cshift(u, 1, 1)\n"
                             "  u = u + v\n"
                             "end do\n"
                             "print *, sum(u)\n"
                             "end\n";

} // namespace

TEST(ObserveEndToEnd, CycleSpansReconcileWithLedger) {
  TracedRun R = runTraced(kTracedProgram, 1);
  ASSERT_GT(R.LedgerTotal, 0.0);
  // The tiling invariant: cycle-domain span durations sum to the ledger
  // total (what f90y-trace reconciles against -stats).
  EXPECT_NEAR(R.CycleSpanSum, R.LedgerTotal, 1e-9 * R.LedgerTotal);
  EXPECT_TRUE(R.SawComm);
  EXPECT_TRUE(R.SawPeac);
}

TEST(ObserveEndToEnd, TraceAndMetricsDeterministicAcrossThreads) {
  TracedRun Serial = runTraced(kTracedProgram, 1);
  TracedRun Wide = runTraced(kTracedProgram, 8);
  EXPECT_EQ(Serial.Output, Wide.Output);
  EXPECT_EQ(Serial.LedgerTotal, Wide.LedgerTotal);
  EXPECT_EQ(Serial.NormalizedTrace, Wide.NormalizedTrace);
  EXPECT_EQ(Serial.MetricsText, Wide.MetricsText);
}

TEST(ObserveEndToEnd, TracingDoesNotPerturbTheSimulation) {
  cm2::CostModel Machine;
  auto Run = [&](bool Traced) {
    TraceRecorder Trace;
    MetricsRegistry Metrics;
    driver::Compilation C(
        driver::CompileOptions::forProfile(driver::Profile::F90Y, Machine));
    if (Traced)
      C.setObservability(&Trace, &Metrics);
    EXPECT_TRUE(C.compile(kTracedProgram)) << C.diags().str();
    driver::ExecutionOptions EOpts;
    EOpts.Threads = 2;
    if (Traced) {
      EOpts.Trace = &Trace;
      EOpts.Metrics = &Metrics;
    }
    driver::Execution Exec(Machine, EOpts);
    auto Report = Exec.run(C.artifacts().Compiled.Program);
    EXPECT_TRUE(Report.has_value()) << Exec.diags().str();
    return Report ? std::make_pair(Report->Output, Report->Ledger.total())
                  : std::make_pair(std::string(), 0.0);
  };
  auto Plain = Run(false);
  auto Traced = Run(true);
  EXPECT_EQ(Plain.first, Traced.first);
  EXPECT_EQ(Plain.second, Traced.second);
}

TEST(ObserveEndToEnd, RunReportJsonIsValid) {
  cm2::CostModel Machine;
  driver::Compilation C(
      driver::CompileOptions::forProfile(driver::Profile::F90Y, Machine));
  ASSERT_TRUE(C.compile(kTracedProgram)) << C.diags().str();
  driver::Execution Exec(Machine);
  auto Report = Exec.run(C.artifacts().Compiled.Program);
  ASSERT_TRUE(Report.has_value()) << Exec.diags().str();

  json::Value V;
  std::string Error;
  ASSERT_TRUE(json::parse(Report->json(), V, Error)) << Error;
  const json::Value *Ledger = V.get("ledger");
  ASSERT_NE(Ledger, nullptr);
  EXPECT_EQ(Ledger->numOr("total_cycles", -1), Report->Ledger.total());
  EXPECT_EQ(Ledger->numOr("flops", -1),
            static_cast<double>(Report->Ledger.Flops));
  ASSERT_NE(V.get("faults"), nullptr);
  EXPECT_EQ(V.get("faults")->numOr("retries", -1), 0.0);
}
