//===- tests/overlap_test.cpp - comm/compute pipelining (Section 5.3.2) ------===//
//
// Part of the Fortran-90-Y reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Section 5.3.2 extension: "A more flexible model would allow the
/// compiler to pipeline communication and computation." Tests that the
/// overlap execution model hides communication behind *independent* node
/// computation, never behind dependent computation, and never changes
/// results.
///
//===----------------------------------------------------------------------===//

#include "driver/Driver.h"
#include "driver/Workloads.h"

#include <gtest/gtest.h>

using namespace f90y;
using namespace f90y::driver;

namespace {

cm2::CostModel machine() {
  cm2::CostModel C;
  C.NumPEs = 64;
  return C;
}

struct TwoRuns {
  RunReport Strict;
  RunReport Overlapped;
};

TwoRuns runBoth(const std::string &Src) {
  CompileOptions Opts = CompileOptions::forProfile(Profile::F90Y, machine());
  // These programs isolate a single exchange on purpose; layout inference
  // would align it away entirely, leaving no communication to overlap.
  Opts.Transforms.Layout = false;
  Compilation C(Opts);
  EXPECT_TRUE(C.compile(Src)) << C.diags().str();
  TwoRuns R;
  {
    Execution Exec(machine());
    auto Rep = Exec.run(C.artifacts().Compiled.Program);
    EXPECT_TRUE(Rep.has_value()) << Exec.diags().str();
    R.Strict = *Rep;
  }
  {
    Execution Exec(machine());
    Exec.executor().setOverlapCommCompute(true);
    auto Rep = Exec.run(C.artifacts().Compiled.Program);
    EXPECT_TRUE(Rep.has_value()) << Exec.diags().str();
    R.Overlapped = *Rep;
  }
  return R;
}

TEST(OverlapTest, IndependentComputeHidesCommunication) {
  // The shift writes w from v; the a/b computations (a different domain,
  // and textually after the shift so blocking leaves them there) are
  // independent, so their node time hides the wire time.
  TwoRuns R = runBoth("program p\n"
                      "real a(48,48), b(48,48), v(64,64), w(64,64)\n"
                      "v = 2.0\n"
                      "w = cshift(v, 8, 1)\n"
                      "a = 1.5\n"
                      "b = a*a + 2.0*a + sqrt(a) + a/3.0\n"
                      "end\n");
  EXPECT_GT(R.Overlapped.Ledger.OverlappedCycles, 0.0);
  EXPECT_LT(R.Overlapped.Ledger.total(), R.Strict.Ledger.total());
  // Identical raw category accounting; only the hidden time differs.
  EXPECT_DOUBLE_EQ(R.Overlapped.Ledger.CommCycles,
                   R.Strict.Ledger.CommCycles);
  EXPECT_DOUBLE_EQ(R.Overlapped.Ledger.NodeCycles,
                   R.Strict.Ledger.NodeCycles);
}

TEST(OverlapTest, DependentComputeDoesNotOverlap) {
  // The computation reads w, the shift's destination: no hiding allowed.
  TwoRuns R = runBoth("program p\n"
                      "real v(64,64), w(64,64), z(64,64)\n"
                      "v = 2.0\n"
                      "w = cshift(v, 8, 1)\n"
                      "z = w + 1.0\n"
                      "end\n");
  EXPECT_DOUBLE_EQ(R.Overlapped.Ledger.OverlappedCycles, 0.0);
  EXPECT_DOUBLE_EQ(R.Overlapped.Ledger.total(), R.Strict.Ledger.total());
}

TEST(OverlapTest, WritingCommSourceAlsoSerializes) {
  // The computation writes v, the shift's *source*: it must wait too.
  TwoRuns R = runBoth("program p\n"
                      "real v(64,64), w(64,64)\n"
                      "v = 2.0\n"
                      "w = cshift(v, 8, 1)\n"
                      "v = v + 1.0\n"
                      "end\n");
  EXPECT_DOUBLE_EQ(R.Overlapped.Ledger.OverlappedCycles, 0.0);
}

TEST(OverlapTest, HostConsumersSerialize) {
  // A reduction right after the shift consumes on the front end.
  TwoRuns R = runBoth("program p\n"
                      "real v(64,64), w(64,64), s\n"
                      "v = 2.0\n"
                      "w = cshift(v, 8, 1)\n"
                      "s = sum(w)\n"
                      "end\n");
  EXPECT_DOUBLE_EQ(R.Overlapped.Ledger.OverlappedCycles, 0.0);
}

TEST(OverlapTest, SavingsAreBoundedByCommTime) {
  TwoRuns R = runBoth("program p\n"
                      "real a(48,48), b(48,48), v(64,64), w(64,64)\n"
                      "integer t\n"
                      "a = 1.5\n"
                      "v = 2.0\n"
                      "do t=1,4\n"
                      "  w = cshift(v, 4, 1)\n"
                      "  b = a*a + 2.0*a + a/3.0 + sqrt(a)\n"
                      "end do\n"
                      "end\n");
  EXPECT_GT(R.Overlapped.Ledger.OverlappedCycles, 0.0);
  EXPECT_LE(R.Overlapped.Ledger.OverlappedCycles,
            R.Strict.Ledger.CommCycles);
}

TEST(OverlapTest, ResultsAreIdentical) {
  std::string Src = sweSource(16, 2);
  CompileOptions Opts = CompileOptions::forProfile(Profile::F90Y, machine());
  Compilation C(Opts);
  ASSERT_TRUE(C.compile(Src)) << C.diags().str();

  Execution Strict(machine()), Overlapped(machine());
  Overlapped.executor().setOverlapCommCompute(true);
  ASSERT_TRUE(Strict.run(C.artifacts().Compiled.Program).has_value());
  ASSERT_TRUE(Overlapped.run(C.artifacts().Compiled.Program).has_value());

  int HA = Strict.executor().fieldHandle("p");
  int HB = Overlapped.executor().fieldHandle("p");
  EXPECT_DOUBLE_EQ(Strict.runtime().reduce(runtime::ReduceOp::Sum, HA),
                   Overlapped.runtime().reduce(runtime::ReduceOp::Sum, HB));
}

TEST(OverlapTest, SweGainIsDependenceLimited) {
  // SWE's shifts feed the statement immediately after them, so the
  // overlap model hides little — itself a reproduction-relevant finding
  // about why the paper kept the strict virtual-processor model.
  std::string Src = sweSource(32, 2);
  CompileOptions Opts = CompileOptions::forProfile(Profile::F90Y, machine());
  Compilation C(Opts);
  ASSERT_TRUE(C.compile(Src)) << C.diags().str();
  Execution Exec(machine());
  Exec.executor().setOverlapCommCompute(true);
  auto Rep = Exec.run(C.artifacts().Compiled.Program);
  ASSERT_TRUE(Rep.has_value());
  EXPECT_LT(Rep->Ledger.OverlappedCycles, 0.25 * Rep->Ledger.CommCycles);
}

} // namespace
