//===- tests/parallel_exec_test.cpp - serial vs parallel equivalence --------===//
//
// Part of the Fortran-90-Y reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The determinism contract of the host thread pool: every sample program
/// run at --threads=8 must produce the exact output and cycle ledger of
/// the --threads=1 serial run. Chunk decomposition depends only on
/// problem size, and per-chunk partials are combined in chunk order, so
/// this holds bitwise, not just approximately.
///
//===----------------------------------------------------------------------===//

#include "driver/Driver.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

using namespace f90y;
using namespace f90y::driver;

namespace {

std::string readProgram(const std::string &Name) {
  std::string Path = std::string(F90Y_SOURCE_DIR) + "/examples/programs/" +
                     Name;
  std::ifstream In(Path);
  EXPECT_TRUE(In.good()) << "cannot open " << Path;
  std::ostringstream Buf;
  Buf << In.rdbuf();
  return Buf.str();
}

cm2::CostModel machine() {
  cm2::CostModel C;
  C.NumPEs = 256; // Enough PEs that every op spans many chunks.
  return C;
}

struct RunResult {
  std::string Output;
  runtime::CycleLedger Ledger;
};

RunResult runWith(const host::HostProgram &Program, unsigned Threads,
                  peac::EngineKind Engine) {
  ExecutionOptions EOpts;
  EOpts.Threads = Threads;
  EOpts.Engine = Engine;
  Execution Exec(machine(), EOpts);
  auto Report = Exec.run(Program);
  EXPECT_TRUE(Report.has_value()) << Exec.diags().str();
  RunResult R;
  if (Report) {
    R.Output = Report->Output;
    R.Ledger = Report->Ledger;
  }
  return R;
}

void expectSame(const RunResult &Serial, const RunResult &Other) {
  EXPECT_EQ(Serial.Output, Other.Output);
  EXPECT_EQ(Serial.Ledger.NodeCycles, Other.Ledger.NodeCycles);
  EXPECT_EQ(Serial.Ledger.CallCycles, Other.Ledger.CallCycles);
  EXPECT_EQ(Serial.Ledger.CommCycles, Other.Ledger.CommCycles);
  EXPECT_EQ(Serial.Ledger.HostCycles, Other.Ledger.HostCycles);
  EXPECT_EQ(Serial.Ledger.OverlappedCycles, Other.Ledger.OverlappedCycles);
  EXPECT_EQ(Serial.Ledger.Flops, Other.Ledger.Flops);
}

class ParallelExecTest : public ::testing::TestWithParam<const char *> {};

TEST_P(ParallelExecTest, ThreadCountAndEngineDoNotChangeResults) {
  CompileOptions Opts = CompileOptions::forProfile(Profile::F90Y, machine());
  Compilation C(Opts);
  ASSERT_TRUE(C.compile(readProgram(GetParam()))) << C.diags().str();
  const host::HostProgram &Program = C.artifacts().Compiled.Program;

  // Reference: serial interpreter. Every thread count x engine combination
  // must reproduce it bitwise.
  RunResult Serial = runWith(Program, 1, peac::EngineKind::Interp);
  expectSame(Serial, runWith(Program, 8, peac::EngineKind::Interp));
  expectSame(Serial, runWith(Program, 1, peac::EngineKind::Compiled));
  expectSame(Serial, runWith(Program, 8, peac::EngineKind::Compiled));
}

INSTANTIATE_TEST_SUITE_P(SamplePrograms, ParallelExecTest,
                         ::testing::Values("fig10.f90", "subroutines.f90",
                                           "swe.f90"),
                         [](const ::testing::TestParamInfo<const char *> &I) {
                           std::string Name = I.param;
                           return Name.substr(0, Name.find('.'));
                         });

} // namespace
