//===- tests/peac_assembler_test.cpp - PEAC assembler round-trips ------------===//
//
// Part of the Fortran-90-Y reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "driver/Driver.h"
#include "driver/Workloads.h"
#include "peac/Assembler.h"
#include "peac/Executor.h"

#include <gtest/gtest.h>

using namespace f90y;
using namespace f90y::peac;

namespace {

TEST(PeacAssembler, ParsesMinimalRoutine) {
  DiagnosticEngine Diags;
  auto R = assemble("Padd_\n"
                    "    flodv [aP0+0]1++ aV1\n"
                    "    faddv aV1 [aP1+0]1++ aV2\n"
                    "    fstrv aV2 [aP2+0]1++\n"
                    "    jnz ac2 Padd_\n",
                    Diags);
  ASSERT_TRUE(R.has_value()) << Diags.str();
  EXPECT_EQ(R->Name, "Padd");
  ASSERT_EQ(R->Body.size(), 3u);
  EXPECT_EQ(R->Body[0].Op, Opcode::FLodV);
  EXPECT_EQ(R->Body[1].Op, Opcode::FAddV);
  ASSERT_EQ(R->Body[1].Srcs.size(), 2u);
  EXPECT_TRUE(R->Body[1].Srcs[1].isMem());
  EXPECT_TRUE(R->Body[2].HasMemDst);
  EXPECT_EQ(R->NumPtrArgs, 3u);
}

TEST(PeacAssembler, ParsesDualIssueCommas) {
  DiagnosticEngine Diags;
  auto R = assemble("P_\n"
                    "    fmulv aS0 aV1 aV3, flodv [aP0+0]1++ aV4\n"
                    "    fstrv aV3 [aP1+0]1++\n"
                    "    jnz ac2 P_\n",
                    Diags);
  ASSERT_TRUE(R.has_value()) << Diags.str();
  ASSERT_EQ(R->Body.size(), 3u);
  EXPECT_FALSE(R->Body[0].FusedWithPrev);
  EXPECT_TRUE(R->Body[1].FusedWithPrev);
  EXPECT_EQ(R->slotCount(), 2u);
  EXPECT_EQ(R->NumScalarArgs, 1u);
}

TEST(PeacAssembler, ParsesImmediatesOffsetsAndStrides) {
  DiagnosticEngine Diags;
  auto R = assemble("P_\n"
                    "    fmaddv aS2 [aP3+8]2++ #2.5 aV0\n"
                    "    fstrv aV0 [aP0+0]1++\n"
                    "    jnz ac2 P_\n",
                    Diags);
  ASSERT_TRUE(R.has_value()) << Diags.str();
  const Instruction &I = R->Body[0];
  EXPECT_EQ(I.Op, Opcode::FMAddV);
  ASSERT_EQ(I.Srcs.size(), 3u);
  EXPECT_EQ(I.Srcs[0].K, Operand::Kind::SReg);
  EXPECT_EQ(I.Srcs[1].K, Operand::Kind::Mem);
  EXPECT_EQ(I.Srcs[1].Reg, 3u);
  EXPECT_EQ(I.Srcs[1].Offset, 8);
  EXPECT_EQ(I.Srcs[1].Stride, 2);
  EXPECT_EQ(I.Srcs[2].K, Operand::Kind::Imm);
  EXPECT_DOUBLE_EQ(I.Srcs[2].Imm, 2.5);
}

TEST(PeacAssembler, RejectsBadInput) {
  struct Case {
    const char *Text;
    const char *Why;
  };
  for (const Case &C : {
           Case{"    flodv [aP0+0]1++ aV1\n", "missing label"},
           Case{"P_\n    frobv aV1 aV2\n    jnz ac2 P_\n",
                "unknown mnemonic"},
           Case{"P_\n    faddv aV1 aV2\n    jnz ac2 P_\n",
                "wrong arity"},
           Case{"P_\n    fstrv aV1 aV2\n    jnz ac2 P_\n",
                "store to register"},
           Case{"P_\n    flodv [aP0+0] aV1\n    jnz ac2 P_\n",
                "missing post-increment"},
           Case{"P_\n    flodv [aP0+0]1++ aV1\n", "missing jnz"},
       }) {
    DiagnosticEngine Diags;
    EXPECT_FALSE(assemble(C.Text, Diags).has_value()) << C.Why;
    EXPECT_TRUE(Diags.hasErrors()) << C.Why;
  }
}

TEST(PeacAssembler, RoundTripsPrintedForm) {
  DiagnosticEngine Diags;
  std::string Text = "Pk51vs1_\n"
                     "    flodv [aP7+0]1++ aV3\n"
                     "    fsubv aV3 [aP4+0]1++ aV1\n"
                     "    fmulv aS28 aV1 aV3, flodv [aP8+0]1++ aV4\n"
                     "    fdivv aV1 aV3 aV3\n"
                     "    fstrv aV3 [aP6+0]1++\n"
                     "    jnz ac2 Pk51vs1_\n";
  auto R = assemble(Text, Diags);
  ASSERT_TRUE(R.has_value()) << Diags.str();
  EXPECT_EQ(R->str(), Text);
}

TEST(PeacAssembler, CompilerOutputRoundTrips) {
  // Every routine the PE compiler generates for SWE must re-assemble to
  // an identical listing.
  using namespace f90y::driver;
  Compilation C(CompileOptions::forProfile(Profile::F90Y));
  ASSERT_TRUE(C.compile(sweSource(16, 1))) << C.diags().str();
  for (const Routine &R : C.artifacts().Compiled.Program.Routines) {
    DiagnosticEngine Diags;
    auto Back = assemble(R.str(), Diags);
    ASSERT_TRUE(Back.has_value()) << Diags.str() << "\n" << R.str();
    EXPECT_EQ(Back->str(), R.str());
    EXPECT_EQ(Back->slotCount(), R.slotCount());
  }
}

TEST(PeacAssembler, AssembledRoutineExecutes) {
  // Hand-written PEAC runs on the executor: z = 2*x + y.
  DiagnosticEngine Diags;
  auto R = assemble("P_\n"
                    "    flodv [aP0+0]1++ aV0\n"
                    "    fmaddv #2 aV0 [aP1+0]1++ aV1\n"
                    "    fstrv aV1 [aP2+0]1++\n"
                    "    jnz ac2 P_\n",
                    Diags);
  ASSERT_TRUE(R.has_value()) << Diags.str();
  cm2::CostModel Costs;
  Costs.NumPEs = 1;
  std::vector<double> X = {1, 2, 3, 4}, Y = {10, 20, 30, 40}, Z(4, 0);
  ExecArgs Args;
  Args.NumPEs = 1;
  Args.SubgridElems = 4;
  Args.Ptrs = {{X.data(), 4, 0}, {Y.data(), 4, 0}, {Z.data(), 4, 0}};
  execute(*R, Args, Costs);
  EXPECT_DOUBLE_EQ(Z[0], 12);
  EXPECT_DOUBLE_EQ(Z[3], 48);
}

} // namespace
