//===- tests/peac_test.cpp - PEAC ISA and executor unit tests ---------------===//
//
// Part of the Fortran-90-Y reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "peac/Executor.h"
#include "peac/Peac.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace f90y;
using namespace f90y::peac;

namespace {

cm2::CostModel smallMachine(unsigned PEs = 2) {
  cm2::CostModel C;
  C.NumPEs = PEs;
  return C;
}

/// Builds `z = x + y` over one pointer-per-array convention:
/// P0 = x, P1 = y, P2 = z.
Routine buildAddRoutine() {
  Routine R;
  R.Name = "Padd";
  R.NumPtrArgs = 3;
  Instruction Load;
  Load.Op = Opcode::FLodV;
  Load.Srcs = {Operand::mem(0)};
  Load.DstVReg = 1;
  R.Body.push_back(Load);
  Instruction Add;
  Add.Op = Opcode::FAddV;
  Add.Srcs = {Operand::vreg(1), Operand::mem(1)}; // Chained operand.
  Add.DstVReg = 2;
  R.Body.push_back(Add);
  Instruction Store;
  Store.Op = Opcode::FStrV;
  Store.Srcs = {Operand::vreg(2)};
  Store.HasMemDst = true;
  Store.MemDst = Operand::mem(2);
  R.Body.push_back(Store);
  return R;
}

TEST(PeacISA, OperandPrinting) {
  EXPECT_EQ(Operand::vreg(3).str(), "aV3");
  EXPECT_EQ(Operand::sreg(28).str(), "aS28");
  EXPECT_EQ(Operand::mem(7, 0, 1).str(), "[aP7+0]1++");
  EXPECT_EQ(Operand::mem(4, 2, 3).str(), "[aP4+2]3++");
  EXPECT_EQ(Operand::imm(2.5).str(), "#2.5");
}

TEST(PeacISA, InstructionPrintingMatchesFigure12Style) {
  Instruction I;
  I.Op = Opcode::FSubV;
  I.Srcs = {Operand::vreg(3), Operand::mem(4)};
  I.DstVReg = 1;
  EXPECT_EQ(I.str(), "fsubv aV3 [aP4+0]1++ aV1");

  Instruction L;
  L.Op = Opcode::FLodV;
  L.Srcs = {Operand::mem(7)};
  L.DstVReg = 3;
  EXPECT_EQ(L.str(), "flodv [aP7+0]1++ aV3");
}

TEST(PeacISA, RoutinePrintingShowsDualIssueOnOneLine) {
  Routine R = buildAddRoutine();
  R.Body[1].FusedWithPrev = true;
  std::string S = R.str();
  EXPECT_NE(S.find("Padd_\n"), std::string::npos);
  EXPECT_NE(S.find("flodv [aP0+0]1++ aV1, faddv aV1 [aP1+0]1++ aV2"),
            std::string::npos)
      << S;
  EXPECT_NE(S.find("jnz ac2 Padd_"), std::string::npos);
}

TEST(PeacISA, SlotCountHonorsFusion) {
  Routine R = buildAddRoutine();
  EXPECT_EQ(R.slotCount(), 3u);
  R.Body[1].FusedWithPrev = true;
  EXPECT_EQ(R.slotCount(), 2u);
}

TEST(PeacISA, CyclesPerIterationUsesSlotMax) {
  cm2::CostModel C = smallMachine();
  Routine R = buildAddRoutine();
  // Unfused: 4 + 4 + 4 + loop overhead 2 = 14.
  EXPECT_DOUBLE_EQ(R.cyclesPerIteration(C), 14.0);
  R.Body[1].FusedWithPrev = true;
  // Fused: max(4,4) + 4 + 2 = 10.
  EXPECT_DOUBLE_EQ(R.cyclesPerIteration(C), 10.0);
}

TEST(PeacISA, SpillOpsCostHalfThePublishedPair) {
  cm2::CostModel C = smallMachine();
  Instruction Spill;
  Spill.Op = Opcode::FStrV;
  Spill.Srcs = {Operand::vreg(1)};
  Spill.HasMemDst = true;
  Spill.MemDst = Operand::mem(9);
  Spill.IsSpill = true;
  EXPECT_DOUBLE_EQ(instructionCycles(Spill, C), 9.0);
}

TEST(PeacISA, DivideAndSqrtAreExpensive) {
  cm2::CostModel C = smallMachine();
  Instruction Div;
  Div.Op = Opcode::FDivV;
  Div.Srcs = {Operand::vreg(1), Operand::vreg(2)};
  EXPECT_DOUBLE_EQ(instructionCycles(Div, C), C.VectorDivCycles);
  Instruction Sqrt;
  Sqrt.Op = Opcode::FSqrtV;
  Sqrt.Srcs = {Operand::vreg(1)};
  EXPECT_DOUBLE_EQ(instructionCycles(Sqrt, C), C.VectorSqrtCycles);
}

TEST(PeacExec, ElementwiseAddAcrossPEs) {
  cm2::CostModel C = smallMachine(2);
  Routine R = buildAddRoutine();

  // Two PEs, 8 elements each (2 iterations of width 4).
  const int64_t VP = 8;
  std::vector<double> X(16), Y(16), Z(16, -1);
  for (int I = 0; I < 16; ++I) {
    X[static_cast<size_t>(I)] = I;
    Y[static_cast<size_t>(I)] = 100 + I;
  }
  ExecArgs Args;
  Args.NumPEs = 2;
  Args.SubgridElems = VP;
  Args.Ptrs = {{X.data(), 8, 0}, {Y.data(), 8, 0}, {Z.data(), 8, 0}};

  ExecResult Res = execute(R, Args, C);
  for (int I = 0; I < 16; ++I)
    EXPECT_DOUBLE_EQ(Z[static_cast<size_t>(I)], 100 + 2 * I) << I;
  // 2 iterations x 14 cycles.
  EXPECT_DOUBLE_EQ(Res.NodeCycles, 28.0);
  // 1 flop per element x 8 elements x 2 PEs.
  EXPECT_EQ(Res.Flops, 16u);
  // Call overhead: fixed + (3 ptrs + 0 scalars + 1 count) args.
  EXPECT_DOUBLE_EQ(Res.CallCycles, C.PeacCallCycles + 4.0 * C.IFifoPerArgCycles);
}

TEST(PeacExec, ScalarBroadcastAndImmediate) {
  cm2::CostModel C = smallMachine(1);
  Routine R;
  R.Name = "Pmuladd";
  R.NumPtrArgs = 2;
  R.NumScalarArgs = 1;
  // z = s0 * x + 2.5 via fmaddv with an immediate addend.
  Instruction Load;
  Load.Op = Opcode::FLodV;
  Load.Srcs = {Operand::mem(0)};
  Load.DstVReg = 0;
  R.Body.push_back(Load);
  Instruction Madd;
  Madd.Op = Opcode::FMAddV;
  Madd.Srcs = {Operand::sreg(0), Operand::vreg(0), Operand::imm(2.5)};
  Madd.DstVReg = 1;
  R.Body.push_back(Madd);
  Instruction Store;
  Store.Op = Opcode::FStrV;
  Store.Srcs = {Operand::vreg(1)};
  Store.HasMemDst = true;
  Store.MemDst = Operand::mem(1);
  R.Body.push_back(Store);

  std::vector<double> X = {1, 2, 3, 4}, Z(4, 0);
  ExecArgs Args;
  Args.NumPEs = 1;
  Args.SubgridElems = 4;
  Args.Ptrs = {{X.data(), 4, 0}, {Z.data(), 4, 0}};
  Args.Scalars = {3.0};
  ExecResult Res = execute(R, Args, C);
  EXPECT_DOUBLE_EQ(Z[0], 5.5);
  EXPECT_DOUBLE_EQ(Z[3], 14.5);
  // fmaddv: 2 flops per element.
  EXPECT_EQ(Res.Flops, 8u);
}

TEST(PeacExec, MaskedSelect) {
  cm2::CostModel C = smallMachine(1);
  Routine R;
  R.Name = "Psel";
  R.NumPtrArgs = 3; // mask, a, dst
  Instruction LM;
  LM.Op = Opcode::FLodV;
  LM.Srcs = {Operand::mem(0)};
  LM.DstVReg = 0;
  Instruction LA;
  LA.Op = Opcode::FLodV;
  LA.Srcs = {Operand::mem(1)};
  LA.DstVReg = 1;
  Instruction LD;
  LD.Op = Opcode::FLodV;
  LD.Srcs = {Operand::mem(2)};
  LD.DstVReg = 2;
  Instruction Sel; // dst = mask ? a : dst  (the Figure 10 masked move)
  Sel.Op = Opcode::FSelV;
  Sel.Srcs = {Operand::vreg(0), Operand::vreg(1), Operand::vreg(2)};
  Sel.DstVReg = 3;
  Instruction St;
  St.Op = Opcode::FStrV;
  St.Srcs = {Operand::vreg(3)};
  St.HasMemDst = true;
  St.MemDst = Operand::mem(2);
  R.Body = {LM, LA, LD, Sel, St};

  std::vector<double> M = {1, 0, 1, 0}, A = {9, 9, 9, 9}, D = {1, 2, 3, 4};
  ExecArgs Args;
  Args.NumPEs = 1;
  Args.SubgridElems = 4;
  Args.Ptrs = {{M.data(), 4, 0}, {A.data(), 4, 0}, {D.data(), 4, 0}};
  execute(R, Args, C);
  EXPECT_DOUBLE_EQ(D[0], 9);
  EXPECT_DOUBLE_EQ(D[1], 2);
  EXPECT_DOUBLE_EQ(D[2], 9);
  EXPECT_DOUBLE_EQ(D[3], 4);
}

TEST(PeacExec, SpillSlotsRoundTrip) {
  cm2::CostModel C = smallMachine(1);
  Routine R;
  R.Name = "Pspill";
  R.NumPtrArgs = 2;
  R.NumSpillSlots = 1;
  // Load x, spill it, load y into the same reg, restore spill, add, store.
  Instruction L1;
  L1.Op = Opcode::FLodV;
  L1.Srcs = {Operand::mem(0)};
  L1.DstVReg = 0;
  Instruction Sp;
  Sp.Op = Opcode::FStrV;
  Sp.Srcs = {Operand::vreg(0)};
  Sp.HasMemDst = true;
  Sp.MemDst = Operand::mem(2); // Ptr 2 >= NumPtrArgs => spill slot 0.
  Sp.IsSpill = true;
  Instruction L2;
  L2.Op = Opcode::FLodV;
  L2.Srcs = {Operand::mem(1)};
  L2.DstVReg = 0;
  Instruction Re;
  Re.Op = Opcode::FLodV;
  Re.Srcs = {Operand::mem(2)};
  Re.DstVReg = 1;
  Re.IsSpill = true;
  Instruction Add;
  Add.Op = Opcode::FAddV;
  Add.Srcs = {Operand::vreg(0), Operand::vreg(1)};
  Add.DstVReg = 2;
  Instruction St;
  St.Op = Opcode::FStrV;
  St.Srcs = {Operand::vreg(2)};
  St.HasMemDst = true;
  St.MemDst = Operand::mem(1);
  R.Body = {L1, Sp, L2, Re, Add, St};

  std::vector<double> X = {1, 2, 3, 4}, Y = {10, 20, 30, 40};
  ExecArgs Args;
  Args.NumPEs = 1;
  Args.SubgridElems = 4;
  Args.Ptrs = {{X.data(), 4, 0}, {Y.data(), 4, 0}};
  execute(R, Args, C);
  EXPECT_DOUBLE_EQ(Y[0], 11);
  EXPECT_DOUBLE_EQ(Y[3], 44);
}

TEST(PeacExec, PaddingLanesDoNotCountAsFlops) {
  cm2::CostModel C = smallMachine(1);
  Routine R = buildAddRoutine();
  // VP = 6: two iterations execute, but only 6 elements are real.
  std::vector<double> X(8, 1), Y(8, 2), Z(8, 0);
  ExecArgs Args;
  Args.NumPEs = 1;
  Args.SubgridElems = 6;
  Args.Ptrs = {{X.data(), 8, 0}, {Y.data(), 8, 0}, {Z.data(), 8, 0}};
  ExecResult Res = execute(R, Args, C);
  EXPECT_EQ(Res.Flops, 6u);
  EXPECT_DOUBLE_EQ(Res.NodeCycles, 28.0); // Still 2 iterations of cycles.
}

/// Builds `z = x / y` (P0 = x, P1 = y, P2 = z).
Routine buildDivRoutine() {
  Routine R;
  R.Name = "Pdiv";
  R.NumPtrArgs = 3;
  Instruction Load;
  Load.Op = Opcode::FLodV;
  Load.Srcs = {Operand::mem(0)};
  Load.DstVReg = 1;
  R.Body.push_back(Load);
  Instruction Div;
  Div.Op = Opcode::FDivV;
  Div.Srcs = {Operand::vreg(1), Operand::mem(1)};
  Div.DstVReg = 2;
  R.Body.push_back(Div);
  Instruction Store;
  Store.Op = Opcode::FStrV;
  Store.Srcs = {Operand::vreg(2)};
  Store.HasMemDst = true;
  Store.MemDst = Operand::mem(2);
  R.Body.push_back(Store);
  return R;
}

TEST(PeacExec, TailLanesDoNotStorePastSubgrid) {
  cm2::CostModel C = smallMachine(1);
  Routine R = buildDivRoutine();
  // VP = 6: the second iteration computes lanes 6 and 7 over padding
  // (0/0 = NaN here), but those stores must be masked off — the padding
  // sentinels survive untouched.
  std::vector<double> X(8, 0), Y(8, 0), Z(8, -7);
  for (int I = 0; I < 6; ++I) {
    X[static_cast<size_t>(I)] = 2.0 * I;
    Y[static_cast<size_t>(I)] = 2.0;
  }
  ExecArgs Args;
  Args.NumPEs = 1;
  Args.SubgridElems = 6;
  Args.Ptrs = {{X.data(), 8, 0}, {Y.data(), 8, 0}, {Z.data(), 8, 0}};
  execute(R, Args, C);
  for (int I = 0; I < 6; ++I)
    EXPECT_DOUBLE_EQ(Z[static_cast<size_t>(I)], I) << I;
  EXPECT_DOUBLE_EQ(Z[6], -7);
  EXPECT_DOUBLE_EQ(Z[7], -7);
}

TEST(PeacExec, DivisionFollowsIEEE) {
  cm2::CostModel C = smallMachine(1);
  Routine R = buildDivRoutine();
  std::vector<double> X = {1, -1, 0, 8}, Y = {0, 0, 0, 2}, Z(4, 0);
  ExecArgs Args;
  Args.NumPEs = 1;
  Args.SubgridElems = 4;
  Args.Ptrs = {{X.data(), 4, 0}, {Y.data(), 4, 0}, {Z.data(), 4, 0}};
  execute(R, Args, C);
  EXPECT_TRUE(std::isinf(Z[0]) && Z[0] > 0) << Z[0];
  EXPECT_TRUE(std::isinf(Z[1]) && Z[1] < 0) << Z[1];
  EXPECT_TRUE(std::isnan(Z[2])) << Z[2];
  EXPECT_DOUBLE_EQ(Z[3], 4);
}

TEST(PeacExec, ModByZeroIsNaN) {
  cm2::CostModel C = smallMachine(1);
  Routine R = buildDivRoutine();
  R.Body[1].Op = Opcode::FModV;
  std::vector<double> X = {5, 5, -5, 7}, Y = {0, 3, 3, 0}, Z(4, 0);
  ExecArgs Args;
  Args.NumPEs = 1;
  Args.SubgridElems = 4;
  Args.Ptrs = {{X.data(), 4, 0}, {Y.data(), 4, 0}, {Z.data(), 4, 0}};
  execute(R, Args, C);
  EXPECT_TRUE(std::isnan(Z[0])) << Z[0];
  EXPECT_DOUBLE_EQ(Z[1], 2);
  EXPECT_DOUBLE_EQ(Z[2], -2);
  EXPECT_TRUE(std::isnan(Z[3])) << Z[3];
}

TEST(PeacExec, ParallelSweepMatchesSerial) {
  cm2::CostModel C = smallMachine(16);
  Routine R = buildAddRoutine();
  const int64_t VP = 7; // Odd count so every PE has a masked tail.
  const size_t Total = 16 * 8;
  std::vector<double> X(Total), Y(Total);
  for (size_t I = 0; I < Total; ++I) {
    X[I] = std::sqrt(static_cast<double>(I));
    Y[I] = 1.0 / (1.0 + static_cast<double>(I));
  }
  auto Run = [&](support::ThreadPool *Pool, std::vector<double> &Z,
                 ExecResult &Res) {
    ExecArgs Args;
    Args.NumPEs = 16;
    Args.SubgridElems = VP;
    Args.Ptrs = {{X.data(), 8, 0}, {Y.data(), 8, 0}, {Z.data(), 8, 0}};
    Res = execute(R, Args, C, Pool);
  };
  std::vector<double> ZSerial(Total, -3), ZPar(Total, -3);
  ExecResult RSerial, RPar;
  Run(nullptr, ZSerial, RSerial);
  support::ThreadPool Pool(4);
  Run(&Pool, ZPar, RPar);
  EXPECT_EQ(ZSerial, ZPar); // Bitwise: operator== on doubles.
  EXPECT_EQ(RSerial.Flops, RPar.Flops);
  EXPECT_DOUBLE_EQ(RSerial.NodeCycles, RPar.NodeCycles);
  EXPECT_DOUBLE_EQ(RSerial.CallCycles, RPar.CallCycles);
}

} // namespace
