//===- tests/programs_test.cpp - shipped .f90 sample programs ----------------===//
//
// Part of the Fortran-90-Y reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The sample programs under examples/programs/ must keep compiling and
/// producing their documented outputs (the f90yc user experience). Paths
/// come from the F90Y_SOURCE_DIR compile definition.
///
//===----------------------------------------------------------------------===//

#include "driver/Driver.h"
#include "interp/Interpreter.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

using namespace f90y;
using namespace f90y::driver;

namespace {

std::string readProgram(const std::string &Name) {
  std::string Path = std::string(F90Y_SOURCE_DIR) + "/examples/programs/" +
                     Name;
  std::ifstream In(Path);
  EXPECT_TRUE(In.good()) << "cannot open " << Path;
  std::ostringstream Buf;
  Buf << In.rdbuf();
  return Buf.str();
}

cm2::CostModel small() {
  cm2::CostModel C;
  C.NumPEs = 32;
  return C;
}

std::string runProgram(const std::string &Name) {
  CompileOptions Opts = CompileOptions::forProfile(Profile::F90Y, small());
  Compilation C(Opts);
  EXPECT_TRUE(C.compile(readProgram(Name))) << C.diags().str();
  if (C.diags().hasErrors())
    return "";
  Execution Exec(small());
  auto Report = Exec.run(C.artifacts().Compiled.Program);
  EXPECT_TRUE(Report.has_value()) << Exec.diags().str();
  return Report ? Report->Output : "";
}

TEST(SamplePrograms, Fig10OutputsMaskedValues) {
  EXPECT_EQ(runProgram("fig10.f90"), "b(1,1) b(2,1): 7 35\n");
}

TEST(SamplePrograms, SubroutinesRelaxation) {
  std::string Out = runProgram("subroutines.f90");
  // Smoothing preserves positivity and prints one energy line.
  ASSERT_EQ(Out.rfind("energy: ", 0), 0u) << Out;
  double E = std::stod(Out.substr(8));
  EXPECT_GT(E, 0.0);
}

TEST(SamplePrograms, SweConservesMeanPressure) {
  std::string Out = runProgram("swe.f90");
  ASSERT_EQ(Out.rfind("mean p: ", 0), 0u) << Out;
  double Mean = std::stod(Out.substr(8));
  // The update conserves total mass up to rounding.
  EXPECT_NEAR(Mean, 50000.0, 0.01);
}

TEST(SamplePrograms, MisalignedSweRelaxes) {
  std::string Out = runProgram("mswe.f90");
  ASSERT_EQ(Out.rfind("mean p: ", 0), 0u) << Out;
  double Mean = std::stod(Out.substr(8));
  // Four steps of +0.5 forcing minus the small flux relaxation.
  EXPECT_GT(Mean, 50000.0);
  EXPECT_LT(Mean, 50002.5);
}

TEST(SamplePrograms, AllMatchReferenceInterpreter) {
  for (const char *Name :
       {"fig10.f90", "subroutines.f90", "swe.f90", "mswe.f90"}) {
    SCOPED_TRACE(Name);
    CompileOptions Opts = CompileOptions::forProfile(Profile::F90Y, small());
    Compilation C(Opts);
    ASSERT_TRUE(C.compile(readProgram(Name))) << C.diags().str();
    DiagnosticEngine IDiags;
    interp::Interpreter Interp(IDiags);
    ASSERT_TRUE(Interp.run(C.artifacts().RawNIR)) << IDiags.str();
    Execution Exec(small());
    auto Report = Exec.run(C.artifacts().Compiled.Program);
    ASSERT_TRUE(Report.has_value()) << Exec.diags().str();
    // The machine reduces in PE order, the interpreter in row-major
    // order, so printed reduction results may differ in the last ulps;
    // compare the trailing number numerically, the prefix exactly.
    std::string M = Report->Output, R = Interp.output();
    size_t MC = M.rfind(": "), RC = R.rfind(": ");
    ASSERT_NE(MC, std::string::npos) << M;
    ASSERT_NE(RC, std::string::npos) << R;
    EXPECT_EQ(M.substr(0, MC), R.substr(0, RC));
    EXPECT_NEAR(std::stod(M.substr(MC + 2)), std::stod(R.substr(RC + 2)),
                1e-6);
  }
}

} // namespace
