//===- tests/property_test.cpp - parameterized property sweeps --------------===//
//
// Part of the Fortran-90-Y reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Property-based sweeps (gtest TEST_P):
///  - geometry layout/locate/coordOf round-trips over many shapes and
///    machine sizes;
///  - shift algebra on the runtime (cshift inverse, composition,
///    full-cycle identity) across dims, distances, and machine sizes;
///  - the compile-and-run-equals-interpret property over a generated
///    family of data-parallel programs, across profiles and machines;
///  - transformation idempotence (optimizing twice = optimizing once).
///
//===----------------------------------------------------------------------===//

#include "driver/Driver.h"
#include "interp/Interpreter.h"
#include "nir/Equality.h"
#include "nir/Printer.h"
#include "runtime/CmRuntime.h"
#include "transform/Transforms.h"

#include <gtest/gtest.h>

using namespace f90y;
using namespace f90y::driver;
using namespace f90y::runtime;

namespace {

//===--------------------------------------------------------------------===//
// Geometry round-trip
//===--------------------------------------------------------------------===//

struct GeometryCase {
  std::vector<int64_t> Extents;
  int64_t PEs;
};

class GeometryProperty : public ::testing::TestWithParam<GeometryCase> {};

TEST_P(GeometryProperty, LocateCoordOfRoundTrip) {
  const GeometryCase &C = GetParam();
  Geometry G = Geometry::layout(C.Extents,
                                std::vector<int64_t>(C.Extents.size(), 1),
                                C.PEs, 4);
  // Structure invariants.
  EXPECT_LE(G.GridPEs, C.PEs);
  int64_t Covered = 1;
  for (size_t D = 0; D < C.Extents.size(); ++D) {
    EXPECT_GE(G.Sub[D] * G.Grid[D], C.Extents[D]);
    Covered *= G.Sub[D] * G.Grid[D];
  }
  EXPECT_GE(Covered, G.totalElements());
  EXPECT_EQ(G.PaddedSubgrid % 4, 0);

  // Every element has a unique home, and the maps invert each other.
  std::set<std::pair<int64_t, int64_t>> Homes;
  std::vector<int64_t> Coord(C.Extents.size(), 0), Back;
  bool Done = false;
  while (!Done) {
    int64_t PE, Off;
    G.locate(Coord, PE, Off);
    ASSERT_GE(PE, 0);
    ASSERT_LT(PE, G.GridPEs);
    ASSERT_GE(Off, 0);
    ASSERT_LT(Off, G.SubgridElems);
    ASSERT_TRUE(Homes.insert({PE, Off}).second)
        << "two elements share PE " << PE << " offset " << Off;
    ASSERT_TRUE(G.coordOf(PE, Off, Back));
    ASSERT_EQ(Back, Coord);
    size_t K = Coord.size();
    Done = true;
    while (K-- > 0) {
      if (++Coord[K] < C.Extents[K]) {
        Done = false;
        break;
      }
      Coord[K] = 0;
    }
  }
  EXPECT_EQ(static_cast<int64_t>(Homes.size()), G.totalElements());
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GeometryProperty,
    ::testing::Values(GeometryCase{{7}, 4}, GeometryCase{{64}, 64},
                      GeometryCase{{64}, 2048}, GeometryCase{{13, 9}, 8},
                      GeometryCase{{16, 16}, 16},
                      GeometryCase{{33, 65}, 32},
                      GeometryCase{{128, 64}, 2048},
                      GeometryCase{{5, 7, 3}, 16},
                      GeometryCase{{8, 8, 8}, 64},
                      GeometryCase{{100}, 1}));

//===--------------------------------------------------------------------===//
// Shift algebra on the runtime
//===--------------------------------------------------------------------===//

struct ShiftCase {
  int64_t N;
  unsigned Dim;
  int64_t Shift;
  unsigned PEs;
};

class ShiftProperty : public ::testing::TestWithParam<ShiftCase> {};

TEST_P(ShiftProperty, CShiftInverseAndFullCycle) {
  const ShiftCase &C = GetParam();
  cm2::CostModel Costs;
  Costs.NumPEs = C.PEs;
  CmRuntime RT(Costs);
  const Geometry *G = RT.getGeometry({C.N, C.N}, {1, 1});
  int A = RT.allocField(G, ElemKind::Real);
  int B = RT.allocField(G, ElemKind::Real);
  int D = RT.allocField(G, ElemKind::Real);

  std::vector<int64_t> Coord(2);
  for (Coord[0] = 0; Coord[0] < C.N; ++Coord[0])
    for (Coord[1] = 0; Coord[1] < C.N; ++Coord[1])
      RT.writeElement(A, Coord,
                      static_cast<double>(Coord[0] * 1000 + Coord[1]));

  // Inverse: cshift(cshift(A, s), -s) == A.
  RT.cshift(B, A, C.Dim, C.Shift);
  RT.cshift(D, B, C.Dim, -C.Shift);
  for (Coord[0] = 0; Coord[0] < C.N; ++Coord[0])
    for (Coord[1] = 0; Coord[1] < C.N; ++Coord[1])
      ASSERT_DOUBLE_EQ(RT.readElement(D, Coord), RT.readElement(A, Coord));

  // Full cycle: shifting by N is the identity.
  RT.cshift(B, A, C.Dim, C.N);
  for (Coord[0] = 0; Coord[0] < C.N; ++Coord[0])
    for (Coord[1] = 0; Coord[1] < C.N; ++Coord[1])
      ASSERT_DOUBLE_EQ(RT.readElement(B, Coord), RT.readElement(A, Coord));

  // Composition: shift(s1) then shift(s2) == shift(s1+s2).
  RT.cshift(B, A, C.Dim, C.Shift);
  RT.cshift(D, B, C.Dim, 3);
  RT.cshift(B, A, C.Dim, C.Shift + 3);
  for (Coord[0] = 0; Coord[0] < C.N; ++Coord[0])
    for (Coord[1] = 0; Coord[1] < C.N; ++Coord[1])
      ASSERT_DOUBLE_EQ(RT.readElement(B, Coord), RT.readElement(D, Coord));
}

INSTANTIATE_TEST_SUITE_P(
    Shifts, ShiftProperty,
    ::testing::Values(ShiftCase{8, 1, 1, 4}, ShiftCase{8, 2, 1, 4},
                      ShiftCase{8, 1, 3, 16}, ShiftCase{8, 2, 5, 16},
                      ShiftCase{12, 1, 7, 8}, ShiftCase{12, 2, 11, 8},
                      ShiftCase{16, 1, 15, 64}, ShiftCase{16, 2, 2, 1},
                      ShiftCase{9, 1, 4, 32}, ShiftCase{9, 2, 8, 2}));

//===--------------------------------------------------------------------===//
// Compile-and-run equals interpret, over a generated program family
//===--------------------------------------------------------------------===//

/// A deterministic generated program: a sequence of whole-array updates
/// over two shapes with shifts, masks, reductions, and a serial loop,
/// whose exact mix is selected by the seed.
std::string generatedProgram(unsigned Seed) {
  unsigned S = Seed;
  auto Next = [&S]() {
    S = S * 1103515245u + 12345u;
    return (S >> 16) & 0x7fff;
  };
  std::string Src = "program gen\n"
                    "real a(12,12), b(12,12), c(12,12)\n"
                    "real v(12), s\n"
                    "integer i, j, t\n"
                    "forall (i=1:12, j=1:12) a(i,j) = real(i) + "
                    "0.125*real(j)\n"
                    "forall (i=1:12, j=1:12) b(i,j) = real(i*j)*0.01\n"
                    "v = 1.0\n";
  const char *Stmts[] = {
      "c = a*b + 0.5\n",
      "c = cshift(a, 1, 1) - cshift(b, -1, 2)\n",
      "a = merge(a, b, a > b)\n",
      "b = abs(a - b) + 0.25*c\n",
      "s = sum(a)\n",
      "c = a / (1.0 + abs(b))\n",
      "where (a > b)\n  c = a\nelsewhere\n  c = b\nend where\n",
      "a = a + cshift(c, 2, 1)*0.1\n",
      "v = 0.5*v + 1.0\n",
      "b = max(a, min(b, c))\n",
      "do t=1,3\n  a = a*0.9 + 0.1*b\nend do\n",
      "c(1:12:2,:) = a(1:12:2,:)\n",
  };
  unsigned Count = 4 + Next() % 5;
  for (unsigned K = 0; K < Count; ++K)
    Src += Stmts[Next() % (sizeof(Stmts) / sizeof(Stmts[0]))];
  Src += "end\n";
  return Src;
}

struct DiffCase {
  unsigned Seed;
  Profile P;
  unsigned PEs;
};

class CompiledEqualsInterpreted
    : public ::testing::TestWithParam<DiffCase> {};

TEST_P(CompiledEqualsInterpreted, OnGeneratedPrograms) {
  const DiffCase &C = GetParam();
  std::string Src = generatedProgram(C.Seed);
  cm2::CostModel Machine;
  Machine.NumPEs = C.PEs;
  CompileOptions Opts = CompileOptions::forProfile(C.P, Machine);
  Compilation Comp(Opts);
  ASSERT_TRUE(Comp.compile(Src)) << Comp.diags().str() << "\n" << Src;

  DiagnosticEngine IDiags;
  interp::Interpreter Interp(IDiags);
  ASSERT_TRUE(Interp.run(Comp.artifacts().RawNIR)) << IDiags.str();

  Execution Exec(Machine);
  auto Report = Exec.run(Comp.artifacts().Compiled.Program);
  ASSERT_TRUE(Report.has_value()) << Exec.diags().str() << "\n" << Src;

  for (const char *Name : {"a", "b", "c", "v"}) {
    const interp::ArrayStorage *Ref = Interp.getArray(Name);
    ASSERT_NE(Ref, nullptr);
    int Handle = Exec.executor().fieldHandle(Name);
    // A single-use temporary may have been fused away entirely; its value
    // is then folded into (and checked through) its consumer.
    if (Handle < 0)
      continue;
    const PeArray &Got = Exec.runtime().field(Handle);
    std::vector<int64_t> Pos(Ref->Extents.size(), 0);
    bool Done = false;
    while (!Done) {
      int64_t PE, Off;
      Got.Geo->locate(Pos, PE, Off);
      ASSERT_NEAR(Got.peBase(PE)[Off],
                  Ref->Data[Ref->linearIndex(Pos)].asReal(), 1e-9)
          << Name << " seed " << C.Seed << "\n"
          << Src;
      size_t K = Pos.size();
      Done = true;
      while (K-- > 0) {
        if (++Pos[K] < Ref->Extents[K].size()) {
          Done = false;
          break;
        }
        Pos[K] = 0;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, CompiledEqualsInterpreted,
    ::testing::Values(DiffCase{1, Profile::F90Y, 8},
                      DiffCase{2, Profile::F90Y, 16},
                      DiffCase{3, Profile::F90Y, 1},
                      DiffCase{4, Profile::CMFStyle, 8},
                      DiffCase{5, Profile::CMFStyle, 64},
                      DiffCase{6, Profile::Naive, 8},
                      DiffCase{7, Profile::F90Y, 4},
                      DiffCase{8, Profile::Naive, 16},
                      DiffCase{9, Profile::F90Y, 32},
                      DiffCase{10, Profile::CMFStyle, 2},
                      DiffCase{11, Profile::F90Y, 128},
                      DiffCase{12, Profile::Naive, 1}));

//===--------------------------------------------------------------------===//
// Transformation idempotence
//===--------------------------------------------------------------------===//

class TransformIdempotence : public ::testing::TestWithParam<unsigned> {};

TEST_P(TransformIdempotence, OptimizeTwiceEqualsOnce) {
  std::string Src = generatedProgram(GetParam());
  Compilation C(CompileOptions::forProfile(Profile::F90Y));
  ASSERT_TRUE(C.compile(Src)) << C.diags().str();
  DiagnosticEngine Diags;
  const nir::ProgramImp *Once = C.artifacts().OptimizedNIR;
  const nir::ProgramImp *Twice =
      transform::optimize(Once, C.nirContext(), Diags);
  ASSERT_FALSE(Diags.hasErrors()) << Diags.str();
  EXPECT_TRUE(nir::impsEqual(Once, Twice))
      << "first:\n"
      << nir::printImp(Once) << "\nsecond:\n"
      << nir::printImp(Twice);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TransformIdempotence,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

} // namespace
