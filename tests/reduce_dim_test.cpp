//===- tests/reduce_dim_test.cpp - partial-dimension reductions --------------===//
//
// Part of the Fortran-90-Y reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// sum/maxval/minval/product(a, dim) producing rank-reduced arrays:
/// interpreter semantics, runtime correctness, and compiled-vs-interpreted
/// agreement on the simulated machine.
///
//===----------------------------------------------------------------------===//

#include "driver/Driver.h"
#include "interp/Interpreter.h"
#include "runtime/CmRuntime.h"

#include <gtest/gtest.h>

using namespace f90y;
using namespace f90y::driver;

namespace {

cm2::CostModel small() {
  cm2::CostModel C;
  C.NumPEs = 16;
  return C;
}

double machineElem(Execution &Exec, const std::string &Name,
                   std::vector<int64_t> ZeroCoord) {
  int H = Exec.executor().fieldHandle(Name);
  EXPECT_GE(H, 0);
  return Exec.runtime().readElement(H, ZeroCoord);
}

class ReduceDimTest : public ::testing::Test {
protected:
  DiagnosticEngine IDiags;
  interp::Interpreter Interp{IDiags};
  std::optional<Execution> Exec;
  Compilation C{CompileOptions::forProfile(Profile::F90Y, small())};

  void runBoth(const std::string &Src) {
    ASSERT_TRUE(C.compile(Src)) << C.diags().str();
    ASSERT_TRUE(Interp.run(C.artifacts().RawNIR)) << IDiags.str();
    Exec.emplace(small());
    ASSERT_TRUE(Exec->run(C.artifacts().Compiled.Program).has_value())
        << Exec->diags().str();
  }

  void expectAgreesWithInterp(const std::string &Name) {
    const interp::ArrayStorage *Ref = Interp.getArray(Name);
    ASSERT_NE(Ref, nullptr) << Name;
    std::vector<int64_t> Pos(Ref->Extents.size(), 0);
    bool Done = false;
    while (!Done) {
      EXPECT_NEAR(machineElem(*Exec, Name, Pos),
                  Ref->Data[Ref->linearIndex(Pos)].asReal(), 1e-9)
          << Name;
      size_t K = Pos.size();
      Done = true;
      while (K-- > 0) {
        if (++Pos[K] < Ref->Extents[K].size()) {
          Done = false;
          break;
        }
        Pos[K] = 0;
      }
    }
  }
};

TEST_F(ReduceDimTest, RowSumsAlongDim2) {
  runBoth("program p\n"
          "integer a(4,6)\n"
          "integer r(4)\n"
          "integer i, j\n"
          "forall (i=1:4, j=1:6) a(i,j) = 10*i + j\n"
          "r = sum(a, 2)\n"
          "end\n");
  // Row i: sum_j (10i + j) = 60i + 21.
  EXPECT_DOUBLE_EQ(machineElem(*Exec, "r", {0}), 81);
  EXPECT_DOUBLE_EQ(machineElem(*Exec, "r", {3}), 261);
  expectAgreesWithInterp("r");
}

TEST_F(ReduceDimTest, ColumnSumsAlongDim1) {
  runBoth("program p\n"
          "integer a(4,6)\n"
          "integer c(6)\n"
          "integer i, j\n"
          "forall (i=1:4, j=1:6) a(i,j) = 10*i + j\n"
          "c = sum(a, dim=1)\n"
          "end\n");
  // Column j: sum_i (10i + j) = 100 + 4j.
  EXPECT_DOUBLE_EQ(machineElem(*Exec, "c", {0}), 104);
  EXPECT_DOUBLE_EQ(machineElem(*Exec, "c", {5}), 124);
  expectAgreesWithInterp("c");
}

TEST_F(ReduceDimTest, MaxvalAndMinvalAlongDims) {
  runBoth("program p\n"
          "integer a(5,5)\n"
          "integer mx(5), mn(5)\n"
          "integer i, j\n"
          "forall (i=1:5, j=1:5) a(i,j) = (i-3)*(j-2)\n"
          "mx = maxval(a, 2)\n"
          "mn = minval(a, 2)\n"
          "end\n");
  expectAgreesWithInterp("mx");
  expectAgreesWithInterp("mn");
}

TEST_F(ReduceDimTest, PartialReductionInsideExpression) {
  // The partial reduction feeds further elemental computation: the
  // extraction pass must hoist it into a field temporary.
  runBoth("program p\n"
          "real a(8,4), b(8)\n"
          "integer i, j\n"
          "forall (i=1:8, j=1:4) a(i,j) = 0.25*real(i*j)\n"
          "b = 2.0*sum(a, 2) + 1.0\n"
          "end\n");
  expectAgreesWithInterp("b");
}

TEST_F(ReduceDimTest, Rank3ReducesToRank2) {
  runBoth("program p\n"
          "integer a(3,4,5)\n"
          "integer r(3,5)\n"
          "integer i, j, k\n"
          "forall (i=1:3, j=1:4, k=1:5) a(i,j,k) = i + 10*j + 100*k\n"
          "r = sum(a, 2)\n"
          "end\n");
  // (i,k): sum_j (i + 10j + 100k) = 4i + 100 + 400k.
  EXPECT_DOUBLE_EQ(machineElem(*Exec, "r", {0, 0}), 504);
  EXPECT_DOUBLE_EQ(machineElem(*Exec, "r", {2, 4}), 2112);
  expectAgreesWithInterp("r");
}

TEST_F(ReduceDimTest, ChargesCommunicationCycles) {
  runBoth("program p\n"
          "real a(16,16), r(16)\n"
          "a = 1.5\n"
          "r = sum(a, 1)\n"
          "end\n");
  Execution E2(small());
  auto Report = E2.run(C.artifacts().Compiled.Program);
  ASSERT_TRUE(Report.has_value());
  EXPECT_GT(Report->Ledger.CommCycles, 0.0);
}

TEST_F(ReduceDimTest, RejectsShapeMismatch) {
  Compilation Bad(CompileOptions::forProfile(Profile::F90Y, small()));
  EXPECT_FALSE(Bad.compile("program p\n"
                           "real a(4,6), r(4)\n"
                           "r = sum(a, 1)\n" // dim=1 leaves 6 elements.
                           "end\n"));
  EXPECT_TRUE(Bad.diags().hasErrors());
}

TEST_F(ReduceDimTest, RejectsDimOutOfRange) {
  Compilation Bad(CompileOptions::forProfile(Profile::F90Y, small()));
  EXPECT_FALSE(Bad.compile("program p\n"
                           "real a(4,6), r(4)\n"
                           "r = sum(a, 3)\n"
                           "end\n"));
  EXPECT_NE(Bad.diags().str().find("dim out of range"), std::string::npos);
}

TEST_F(ReduceDimTest, RuntimeDirectUse) {
  cm2::CostModel Costs = small();
  runtime::CmRuntime RT(Costs);
  const runtime::Geometry *G2 = RT.getGeometry({3, 4}, {1, 1});
  const runtime::Geometry *G1 = RT.getGeometry({3}, {1});
  int Src = RT.allocField(G2, runtime::ElemKind::Real);
  int Dst = RT.allocField(G1, runtime::ElemKind::Real);
  for (int64_t I = 0; I < 3; ++I)
    for (int64_t J = 0; J < 4; ++J)
      RT.writeElement(Src, {I, J}, static_cast<double>(I * 4 + J));
  RT.reduceAlongDim(runtime::ReduceOp::Sum, Dst, Src, 2);
  EXPECT_DOUBLE_EQ(RT.readElement(Dst, {0}), 0 + 1 + 2 + 3);
  EXPECT_DOUBLE_EQ(RT.readElement(Dst, {2}), 8 + 9 + 10 + 11);
}

} // namespace
