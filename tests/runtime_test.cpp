//===- tests/runtime_test.cpp - CM runtime unit tests -----------------------===//
//
// Part of the Fortran-90-Y reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/CmRuntime.h"
#include "runtime/Geometry.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

using namespace f90y;
using namespace f90y::runtime;

namespace {

cm2::CostModel machineWith(unsigned PEs) {
  cm2::CostModel C;
  C.NumPEs = PEs;
  return C;
}

TEST(Geometry, LayoutFactorsPEsAcrossLargestDims) {
  Geometry G = Geometry::layout({128, 64}, {1, 1}, 16, 4);
  EXPECT_EQ(G.GridPEs, 16);
  // Greedy splitting: 128x64 over 16 PEs -> 8x2 grid with 16x32 subgrids.
  EXPECT_EQ(G.Grid[0] * G.Grid[1], 16);
  EXPECT_EQ(G.Sub[0] * G.Grid[0], 128);
  EXPECT_EQ(G.Sub[1] * G.Grid[1], 64);
  EXPECT_EQ(G.SubgridElems, 128 * 64 / 16);
}

TEST(Geometry, SmallArrayLeavesPEsIdle) {
  Geometry G = Geometry::layout({8}, {1}, 2048, 4);
  EXPECT_EQ(G.GridPEs, 8);
  EXPECT_EQ(G.SubgridElems, 1);
  EXPECT_EQ(G.PaddedSubgrid, 4);
}

TEST(Geometry, UnevenExtentPadsEdgeBlocks) {
  Geometry G = Geometry::layout({10}, {1}, 4, 4);
  EXPECT_EQ(G.GridPEs, 4);
  EXPECT_EQ(G.Sub[0], 3); // ceil(10/4)
  std::vector<int64_t> Coord;
  // PE 3 holds coords 9..11; 10 and 11 are padding.
  EXPECT_TRUE(G.coordOf(3, 0, Coord));
  EXPECT_EQ(Coord[0], 9);
  EXPECT_FALSE(G.coordOf(3, 1, Coord));
  EXPECT_FALSE(G.coordOf(3, 2, Coord));
}

TEST(Geometry, LocateAndCoordOfRoundTrip) {
  Geometry G = Geometry::layout({12, 20}, {1, 1}, 8, 4);
  std::vector<int64_t> Coord(2), Back;
  for (Coord[0] = 0; Coord[0] < 12; ++Coord[0]) {
    for (Coord[1] = 0; Coord[1] < 20; ++Coord[1]) {
      int64_t PE, Off;
      G.locate(Coord, PE, Off);
      ASSERT_LT(PE, G.GridPEs);
      ASSERT_LT(Off, G.SubgridElems);
      ASSERT_TRUE(G.coordOf(PE, Off, Back));
      EXPECT_EQ(Back, Coord);
    }
  }
}

class RuntimeTest : public ::testing::Test {
protected:
  cm2::CostModel Costs = machineWith(8);
  CmRuntime RT{Costs};

  int makeSeqField(const std::vector<int64_t> &Extents) {
    const Geometry *G = RT.getGeometry(Extents, std::vector<int64_t>(
                                                    Extents.size(), 1));
    int H = RT.allocField(G, ElemKind::Real);
    // Fill with the row-major linear index.
    std::vector<int64_t> Coord(Extents.size(), 0);
    int64_t Linear = 0;
    while (true) {
      RT.writeElement(H, Coord, static_cast<double>(Linear++));
      size_t K = Extents.size();
      bool Done = true;
      while (K-- > 0) {
        if (++Coord[K] < Extents[K]) {
          Done = false;
          break;
        }
        Coord[K] = 0;
      }
      if (Done)
        break;
    }
    return H;
  }

  double at(int H, std::vector<int64_t> Coord) {
    return RT.readElement(H, Coord);
  }
};

TEST_F(RuntimeTest, GeometryIsCachedBySignature) {
  const Geometry *A = RT.getGeometry({64, 64}, {1, 1});
  const Geometry *B = RT.getGeometry({64, 64}, {1, 1});
  const Geometry *C = RT.getGeometry({64, 32}, {1, 1});
  EXPECT_EQ(A, B);
  EXPECT_NE(A, C);
}

TEST_F(RuntimeTest, CShift1D) {
  int Src = makeSeqField({16});
  int Dst = RT.allocField(RT.field(Src).Geo, ElemKind::Real);
  RT.cshift(Dst, Src, 1, 1); // dst(i) = src(i+1)
  EXPECT_DOUBLE_EQ(at(Dst, {0}), 1);
  EXPECT_DOUBLE_EQ(at(Dst, {14}), 15);
  EXPECT_DOUBLE_EQ(at(Dst, {15}), 0); // Wraps to src(0).
  RT.cshift(Dst, Src, 1, -1);
  EXPECT_DOUBLE_EQ(at(Dst, {0}), 15); // Wraps to src(15).
  EXPECT_DOUBLE_EQ(at(Dst, {1}), 0);
}

TEST_F(RuntimeTest, CShift2DAlongEachDim) {
  int Src = makeSeqField({4, 4});
  int Dst = RT.allocField(RT.field(Src).Geo, ElemKind::Real);
  RT.cshift(Dst, Src, 1, 1); // Rows shift.
  EXPECT_DOUBLE_EQ(at(Dst, {0, 0}), 4);
  EXPECT_DOUBLE_EQ(at(Dst, {3, 2}), 2);
  RT.cshift(Dst, Src, 2, 1); // Columns shift.
  EXPECT_DOUBLE_EQ(at(Dst, {0, 0}), 1);
  EXPECT_DOUBLE_EQ(at(Dst, {2, 3}), 8);
}

TEST_F(RuntimeTest, CShiftChargesCommCycles) {
  int Src = makeSeqField({64});
  int Dst = RT.allocField(RT.field(Src).Geo, ElemKind::Real);
  double Before = RT.ledger().CommCycles;
  RT.cshift(Dst, Src, 1, 1);
  EXPECT_GT(RT.ledger().CommCycles, Before + Costs.CommStartupCycles - 1);
}

TEST_F(RuntimeTest, LongerShiftsCostMoreWireTime) {
  int Src = makeSeqField({64});
  int Dst = RT.allocField(RT.field(Src).Geo, ElemKind::Real);
  RT.ledger().reset();
  RT.cshift(Dst, Src, 1, 1);
  double Short = RT.ledger().CommCycles;
  RT.ledger().reset();
  RT.cshift(Dst, Src, 1, 24);
  double Long = RT.ledger().CommCycles;
  EXPECT_GT(Long, Short);
}

TEST_F(RuntimeTest, EOShiftZeroFills) {
  int Src = makeSeqField({8});
  int Dst = RT.allocField(RT.field(Src).Geo, ElemKind::Real);
  RT.eoshift(Dst, Src, 1, 2);
  EXPECT_DOUBLE_EQ(at(Dst, {0}), 2);
  EXPECT_DOUBLE_EQ(at(Dst, {5}), 7);
  EXPECT_DOUBLE_EQ(at(Dst, {6}), 0);
  EXPECT_DOUBLE_EQ(at(Dst, {7}), 0);
}

TEST_F(RuntimeTest, TransposeSquare) {
  int Src = makeSeqField({4, 4});
  int Dst = RT.allocField(RT.field(Src).Geo, ElemKind::Real);
  RT.transpose(Dst, Src);
  EXPECT_DOUBLE_EQ(at(Dst, {1, 2}), at(Src, {2, 1}));
  EXPECT_DOUBLE_EQ(at(Dst, {0, 3}), 12);
}

TEST_F(RuntimeTest, SectionCopyMisaligned) {
  // l(32:64) = l(96:128), zero-based: dst 31..63 <- src 95..127.
  int H = makeSeqField({128});
  std::vector<CmRuntime::SectionDim> DstSec = {{31, 1, 33}};
  std::vector<CmRuntime::SectionDim> SrcSec = {{95, 1, 33}};
  RT.sectionCopy(H, DstSec, H, SrcSec);
  EXPECT_DOUBLE_EQ(at(H, {30}), 30);
  EXPECT_DOUBLE_EQ(at(H, {31}), 95);
  EXPECT_DOUBLE_EQ(at(H, {63}), 127);
  EXPECT_DOUBLE_EQ(at(H, {64}), 64);
}

TEST_F(RuntimeTest, SectionCopyOverlappingKeepsVectorSemantics) {
  int H = makeSeqField({8});
  // l(2:8) = l(1:7): every read happens before any write.
  std::vector<CmRuntime::SectionDim> DstSec = {{1, 1, 7}};
  std::vector<CmRuntime::SectionDim> SrcSec = {{0, 1, 7}};
  RT.sectionCopy(H, DstSec, H, SrcSec);
  EXPECT_DOUBLE_EQ(at(H, {0}), 0);
  EXPECT_DOUBLE_EQ(at(H, {1}), 0);
  EXPECT_DOUBLE_EQ(at(H, {7}), 6);
}

TEST_F(RuntimeTest, Reductions) {
  int H = makeSeqField({10}); // 0..9
  EXPECT_DOUBLE_EQ(RT.reduce(ReduceOp::Sum, H), 45);
  EXPECT_DOUBLE_EQ(RT.reduce(ReduceOp::Max, H), 9);
  EXPECT_DOUBLE_EQ(RT.reduce(ReduceOp::Min, H), 0);
  EXPECT_DOUBLE_EQ(RT.reduce(ReduceOp::Count, H), 9); // Nonzero count.
  EXPECT_DOUBLE_EQ(RT.reduce(ReduceOp::Any, H), 1);
  EXPECT_DOUBLE_EQ(RT.reduce(ReduceOp::All, H), 0); // Element 0 is zero.
}

TEST_F(RuntimeTest, ReductionIgnoresPadding) {
  // 10 elements over 8 PEs: subgrids of 2 with padding; padding must not
  // leak into the sum.
  int H = makeSeqField({10});
  EXPECT_DOUBLE_EQ(RT.reduce(ReduceOp::Sum, H), 45);
}

TEST_F(RuntimeTest, CoordFieldHoldsFortranCoordinates) {
  const Geometry *G = RT.getGeometry({6, 3}, {1, 1});
  int C1 = RT.coordField(G, 1);
  int C2 = RT.coordField(G, 2);
  EXPECT_DOUBLE_EQ(at(C1, {0, 0}), 1);
  EXPECT_DOUBLE_EQ(at(C1, {5, 2}), 6);
  EXPECT_DOUBLE_EQ(at(C2, {0, 0}), 1);
  EXPECT_DOUBLE_EQ(at(C2, {5, 2}), 3);
  // Cached per geometry+dim.
  EXPECT_EQ(RT.coordField(G, 1), C1);
}

TEST_F(RuntimeTest, IntFieldsTruncateOnElementWrite) {
  const Geometry *G = RT.getGeometry({4}, {1});
  int H = RT.allocField(G, ElemKind::Int);
  RT.writeElement(H, {0}, 2.9);
  EXPECT_DOUBLE_EQ(RT.readElement(H, {0}), 2.0);
}

TEST_F(RuntimeTest, RenderFieldRowMajor) {
  const Geometry *G = RT.getGeometry({2, 2}, {1, 1});
  int H = RT.allocField(G, ElemKind::Int);
  RT.writeElement(H, {0, 0}, 1);
  RT.writeElement(H, {0, 1}, 2);
  RT.writeElement(H, {1, 0}, 3);
  RT.writeElement(H, {1, 1}, 4);
  EXPECT_EQ(RT.renderField(H), "1 2 3 4");
}

TEST_F(RuntimeTest, FreeFieldReleasesHandle) {
  const Geometry *G = RT.getGeometry({4}, {1});
  int H = RT.allocField(G, ElemKind::Real);
  RT.freeField(H);
  int H2 = RT.allocField(G, ElemKind::Real);
  EXPECT_NE(H, H2);
}

TEST_F(RuntimeTest, FreeFieldEvictsCoordCache) {
  // Regression: freeing a cached coordinate field used to leave the
  // stale handle in the cache, so the next coordField for the same
  // geometry+dim returned a dangling handle.
  const Geometry *G = RT.getGeometry({6, 3}, {1, 1});
  int C1 = RT.coordField(G, 1);
  int C2 = RT.coordField(G, 2);
  RT.freeField(C1);
  int C1b = RT.coordField(G, 1);
  EXPECT_NE(C1b, C1); // A fresh field, not the freed handle.
  EXPECT_DOUBLE_EQ(at(C1b, {0, 0}), 1);
  EXPECT_DOUBLE_EQ(at(C1b, {5, 2}), 6);
  // The other dim's cache entry is untouched.
  EXPECT_EQ(RT.coordField(G, 2), C2);
  // Freeing a non-coordinate field does not disturb the cache.
  int H = RT.allocField(G, ElemKind::Real);
  RT.freeField(H);
  EXPECT_EQ(RT.coordField(G, 1), C1b);
}

TEST_F(RuntimeTest, CommOpsMatchSerialUnderThreadPool) {
  // The same op sequence on a pooled runtime must produce bit-identical
  // data and ledger charges as the serial (no-pool) runtime.
  support::ThreadPool Pool(4);
  CmRuntime PRT{Costs, &Pool};

  auto fill = [](CmRuntime &R) {
    const Geometry *G = R.getGeometry({12, 20}, {1, 1});
    int Src = R.allocField(G, ElemKind::Real);
    std::vector<int64_t> Coord(2);
    for (Coord[0] = 0; Coord[0] < 12; ++Coord[0])
      for (Coord[1] = 0; Coord[1] < 20; ++Coord[1])
        R.writeElement(Src, Coord,
                       0.5 * static_cast<double>(Coord[0] * 20 + Coord[1]));
    return Src;
  };
  int SA = fill(RT), SB = fill(PRT);
  int DA = RT.allocField(RT.field(SA).Geo, ElemKind::Real);
  int DB = PRT.allocField(PRT.field(SB).Geo, ElemKind::Real);

  RT.ledger().reset();
  PRT.ledger().reset();
  RT.cshift(DA, SA, 1, 3);
  PRT.cshift(DB, SB, 1, 3);
  RT.eoshift(DA, SA, 2, -2);
  PRT.eoshift(DB, SB, 2, -2);
  double RedA = RT.reduce(ReduceOp::Sum, SA);
  double RedB = PRT.reduce(ReduceOp::Sum, SB);

  EXPECT_EQ(RedA, RedB); // Bitwise.
  EXPECT_EQ(RT.field(DA).Data, PRT.field(DB).Data);
  EXPECT_EQ(RT.ledger().CommCycles, PRT.ledger().CommCycles);
}

} // namespace
