//===- tests/runtime_test.cpp - CM runtime unit tests -----------------------===//
//
// Part of the Fortran-90-Y reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/CmRuntime.h"
#include "runtime/Geometry.h"
#include "support/FaultInjector.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

using namespace f90y;
using namespace f90y::runtime;

namespace {

cm2::CostModel machineWith(unsigned PEs) {
  cm2::CostModel C;
  C.NumPEs = PEs;
  return C;
}

TEST(Geometry, LayoutFactorsPEsAcrossLargestDims) {
  Geometry G = Geometry::layout({128, 64}, {1, 1}, 16, 4);
  EXPECT_EQ(G.GridPEs, 16);
  // Greedy splitting: 128x64 over 16 PEs -> 8x2 grid with 16x32 subgrids.
  EXPECT_EQ(G.Grid[0] * G.Grid[1], 16);
  EXPECT_EQ(G.Sub[0] * G.Grid[0], 128);
  EXPECT_EQ(G.Sub[1] * G.Grid[1], 64);
  EXPECT_EQ(G.SubgridElems, 128 * 64 / 16);
}

TEST(Geometry, SmallArrayLeavesPEsIdle) {
  Geometry G = Geometry::layout({8}, {1}, 2048, 4);
  EXPECT_EQ(G.GridPEs, 8);
  EXPECT_EQ(G.SubgridElems, 1);
  EXPECT_EQ(G.PaddedSubgrid, 4);
}

TEST(Geometry, UnevenExtentPadsEdgeBlocks) {
  Geometry G = Geometry::layout({10}, {1}, 4, 4);
  EXPECT_EQ(G.GridPEs, 4);
  EXPECT_EQ(G.Sub[0], 3); // ceil(10/4)
  std::vector<int64_t> Coord;
  // PE 3 holds coords 9..11; 10 and 11 are padding.
  EXPECT_TRUE(G.coordOf(3, 0, Coord));
  EXPECT_EQ(Coord[0], 9);
  EXPECT_FALSE(G.coordOf(3, 1, Coord));
  EXPECT_FALSE(G.coordOf(3, 2, Coord));
}

TEST(Geometry, LocateAndCoordOfRoundTrip) {
  Geometry G = Geometry::layout({12, 20}, {1, 1}, 8, 4);
  std::vector<int64_t> Coord(2), Back;
  for (Coord[0] = 0; Coord[0] < 12; ++Coord[0]) {
    for (Coord[1] = 0; Coord[1] < 20; ++Coord[1]) {
      int64_t PE, Off;
      G.locate(Coord, PE, Off);
      ASSERT_LT(PE, G.GridPEs);
      ASSERT_LT(Off, G.SubgridElems);
      ASSERT_TRUE(G.coordOf(PE, Off, Back));
      EXPECT_EQ(Back, Coord);
    }
  }
}

class RuntimeTest : public ::testing::Test {
protected:
  cm2::CostModel Costs = machineWith(8);
  CmRuntime RT{Costs};

  int makeSeqField(const std::vector<int64_t> &Extents) {
    const Geometry *G = RT.getGeometry(Extents, std::vector<int64_t>(
                                                    Extents.size(), 1));
    int H = RT.allocField(G, ElemKind::Real);
    // Fill with the row-major linear index.
    std::vector<int64_t> Coord(Extents.size(), 0);
    int64_t Linear = 0;
    while (true) {
      RT.writeElement(H, Coord, static_cast<double>(Linear++));
      size_t K = Extents.size();
      bool Done = true;
      while (K-- > 0) {
        if (++Coord[K] < Extents[K]) {
          Done = false;
          break;
        }
        Coord[K] = 0;
      }
      if (Done)
        break;
    }
    return H;
  }

  double at(int H, std::vector<int64_t> Coord) {
    return RT.readElement(H, Coord);
  }
};

TEST_F(RuntimeTest, GeometryIsCachedBySignature) {
  const Geometry *A = RT.getGeometry({64, 64}, {1, 1});
  const Geometry *B = RT.getGeometry({64, 64}, {1, 1});
  const Geometry *C = RT.getGeometry({64, 32}, {1, 1});
  EXPECT_EQ(A, B);
  EXPECT_NE(A, C);
}

TEST_F(RuntimeTest, CShift1D) {
  int Src = makeSeqField({16});
  int Dst = RT.allocField(RT.field(Src).Geo, ElemKind::Real);
  RT.cshift(Dst, Src, 1, 1); // dst(i) = src(i+1)
  EXPECT_DOUBLE_EQ(at(Dst, {0}), 1);
  EXPECT_DOUBLE_EQ(at(Dst, {14}), 15);
  EXPECT_DOUBLE_EQ(at(Dst, {15}), 0); // Wraps to src(0).
  RT.cshift(Dst, Src, 1, -1);
  EXPECT_DOUBLE_EQ(at(Dst, {0}), 15); // Wraps to src(15).
  EXPECT_DOUBLE_EQ(at(Dst, {1}), 0);
}

TEST_F(RuntimeTest, CShift2DAlongEachDim) {
  int Src = makeSeqField({4, 4});
  int Dst = RT.allocField(RT.field(Src).Geo, ElemKind::Real);
  RT.cshift(Dst, Src, 1, 1); // Rows shift.
  EXPECT_DOUBLE_EQ(at(Dst, {0, 0}), 4);
  EXPECT_DOUBLE_EQ(at(Dst, {3, 2}), 2);
  RT.cshift(Dst, Src, 2, 1); // Columns shift.
  EXPECT_DOUBLE_EQ(at(Dst, {0, 0}), 1);
  EXPECT_DOUBLE_EQ(at(Dst, {2, 3}), 8);
}

TEST_F(RuntimeTest, CShiftChargesCommCycles) {
  int Src = makeSeqField({64});
  int Dst = RT.allocField(RT.field(Src).Geo, ElemKind::Real);
  double Before = RT.ledger().CommCycles;
  RT.cshift(Dst, Src, 1, 1);
  EXPECT_GT(RT.ledger().CommCycles, Before + Costs.CommStartupCycles - 1);
}

TEST_F(RuntimeTest, LongerShiftsCostMoreWireTime) {
  int Src = makeSeqField({64});
  int Dst = RT.allocField(RT.field(Src).Geo, ElemKind::Real);
  RT.ledger().reset();
  RT.cshift(Dst, Src, 1, 1);
  double Short = RT.ledger().CommCycles;
  RT.ledger().reset();
  RT.cshift(Dst, Src, 1, 24);
  double Long = RT.ledger().CommCycles;
  EXPECT_GT(Long, Short);
}

TEST_F(RuntimeTest, EOShiftZeroFills) {
  int Src = makeSeqField({8});
  int Dst = RT.allocField(RT.field(Src).Geo, ElemKind::Real);
  RT.eoshift(Dst, Src, 1, 2);
  EXPECT_DOUBLE_EQ(at(Dst, {0}), 2);
  EXPECT_DOUBLE_EQ(at(Dst, {5}), 7);
  EXPECT_DOUBLE_EQ(at(Dst, {6}), 0);
  EXPECT_DOUBLE_EQ(at(Dst, {7}), 0);
}

TEST_F(RuntimeTest, TransposeSquare) {
  int Src = makeSeqField({4, 4});
  int Dst = RT.allocField(RT.field(Src).Geo, ElemKind::Real);
  RT.transpose(Dst, Src);
  EXPECT_DOUBLE_EQ(at(Dst, {1, 2}), at(Src, {2, 1}));
  EXPECT_DOUBLE_EQ(at(Dst, {0, 3}), 12);
}

TEST_F(RuntimeTest, SectionCopyMisaligned) {
  // l(32:64) = l(96:128), zero-based: dst 31..63 <- src 95..127.
  int H = makeSeqField({128});
  std::vector<CmRuntime::SectionDim> DstSec = {{31, 1, 33}};
  std::vector<CmRuntime::SectionDim> SrcSec = {{95, 1, 33}};
  RT.sectionCopy(H, DstSec, H, SrcSec);
  EXPECT_DOUBLE_EQ(at(H, {30}), 30);
  EXPECT_DOUBLE_EQ(at(H, {31}), 95);
  EXPECT_DOUBLE_EQ(at(H, {63}), 127);
  EXPECT_DOUBLE_EQ(at(H, {64}), 64);
}

TEST_F(RuntimeTest, SectionCopyOverlappingKeepsVectorSemantics) {
  int H = makeSeqField({8});
  // l(2:8) = l(1:7): every read happens before any write.
  std::vector<CmRuntime::SectionDim> DstSec = {{1, 1, 7}};
  std::vector<CmRuntime::SectionDim> SrcSec = {{0, 1, 7}};
  RT.sectionCopy(H, DstSec, H, SrcSec);
  EXPECT_DOUBLE_EQ(at(H, {0}), 0);
  EXPECT_DOUBLE_EQ(at(H, {1}), 0);
  EXPECT_DOUBLE_EQ(at(H, {7}), 6);
}

TEST_F(RuntimeTest, Reductions) {
  int H = makeSeqField({10}); // 0..9
  EXPECT_DOUBLE_EQ(RT.reduce(ReduceOp::Sum, H), 45);
  EXPECT_DOUBLE_EQ(RT.reduce(ReduceOp::Max, H), 9);
  EXPECT_DOUBLE_EQ(RT.reduce(ReduceOp::Min, H), 0);
  EXPECT_DOUBLE_EQ(RT.reduce(ReduceOp::Count, H), 9); // Nonzero count.
  EXPECT_DOUBLE_EQ(RT.reduce(ReduceOp::Any, H), 1);
  EXPECT_DOUBLE_EQ(RT.reduce(ReduceOp::All, H), 0); // Element 0 is zero.
}

TEST_F(RuntimeTest, ReductionIgnoresPadding) {
  // 10 elements over 8 PEs: subgrids of 2 with padding; padding must not
  // leak into the sum.
  int H = makeSeqField({10});
  EXPECT_DOUBLE_EQ(RT.reduce(ReduceOp::Sum, H), 45);
}

TEST_F(RuntimeTest, CoordFieldHoldsFortranCoordinates) {
  const Geometry *G = RT.getGeometry({6, 3}, {1, 1});
  int C1 = RT.coordField(G, 1);
  int C2 = RT.coordField(G, 2);
  EXPECT_DOUBLE_EQ(at(C1, {0, 0}), 1);
  EXPECT_DOUBLE_EQ(at(C1, {5, 2}), 6);
  EXPECT_DOUBLE_EQ(at(C2, {0, 0}), 1);
  EXPECT_DOUBLE_EQ(at(C2, {5, 2}), 3);
  // Cached per geometry+dim.
  EXPECT_EQ(RT.coordField(G, 1), C1);
}

TEST_F(RuntimeTest, IntFieldsTruncateOnElementWrite) {
  const Geometry *G = RT.getGeometry({4}, {1});
  int H = RT.allocField(G, ElemKind::Int);
  RT.writeElement(H, {0}, 2.9);
  EXPECT_DOUBLE_EQ(RT.readElement(H, {0}), 2.0);
}

TEST_F(RuntimeTest, RenderFieldRowMajor) {
  const Geometry *G = RT.getGeometry({2, 2}, {1, 1});
  int H = RT.allocField(G, ElemKind::Int);
  RT.writeElement(H, {0, 0}, 1);
  RT.writeElement(H, {0, 1}, 2);
  RT.writeElement(H, {1, 0}, 3);
  RT.writeElement(H, {1, 1}, 4);
  EXPECT_EQ(RT.renderField(H), "1 2 3 4");
}

TEST_F(RuntimeTest, FreeFieldReleasesHandle) {
  const Geometry *G = RT.getGeometry({4}, {1});
  int H = RT.allocField(G, ElemKind::Real);
  RT.freeField(H);
  int H2 = RT.allocField(G, ElemKind::Real);
  EXPECT_NE(H, H2);
}

TEST_F(RuntimeTest, FreeFieldEvictsCoordCache) {
  // Regression: freeing a cached coordinate field used to leave the
  // stale handle in the cache, so the next coordField for the same
  // geometry+dim returned a dangling handle.
  const Geometry *G = RT.getGeometry({6, 3}, {1, 1});
  int C1 = RT.coordField(G, 1);
  int C2 = RT.coordField(G, 2);
  RT.freeField(C1);
  int C1b = RT.coordField(G, 1);
  EXPECT_NE(C1b, C1); // A fresh field, not the freed handle.
  EXPECT_DOUBLE_EQ(at(C1b, {0, 0}), 1);
  EXPECT_DOUBLE_EQ(at(C1b, {5, 2}), 6);
  // The other dim's cache entry is untouched.
  EXPECT_EQ(RT.coordField(G, 2), C2);
  // Freeing a non-coordinate field does not disturb the cache.
  int H = RT.allocField(G, ElemKind::Real);
  RT.freeField(H);
  EXPECT_EQ(RT.coordField(G, 1), C1b);
}

TEST_F(RuntimeTest, CommOpsMatchSerialUnderThreadPool) {
  // The same op sequence on a pooled runtime must produce bit-identical
  // data and ledger charges as the serial (no-pool) runtime.
  support::ThreadPool Pool(4);
  CmRuntime PRT{Costs, &Pool};

  auto fill = [](CmRuntime &R) {
    const Geometry *G = R.getGeometry({12, 20}, {1, 1});
    int Src = R.allocField(G, ElemKind::Real);
    std::vector<int64_t> Coord(2);
    for (Coord[0] = 0; Coord[0] < 12; ++Coord[0])
      for (Coord[1] = 0; Coord[1] < 20; ++Coord[1])
        R.writeElement(Src, Coord,
                       0.5 * static_cast<double>(Coord[0] * 20 + Coord[1]));
    return Src;
  };
  int SA = fill(RT), SB = fill(PRT);
  int DA = RT.allocField(RT.field(SA).Geo, ElemKind::Real);
  int DB = PRT.allocField(PRT.field(SB).Geo, ElemKind::Real);

  RT.ledger().reset();
  PRT.ledger().reset();
  RT.cshift(DA, SA, 1, 3);
  PRT.cshift(DB, SB, 1, 3);
  RT.eoshift(DA, SA, 2, -2);
  PRT.eoshift(DB, SB, 2, -2);
  double RedA = RT.reduce(ReduceOp::Sum, SA);
  double RedB = PRT.reduce(ReduceOp::Sum, SB);

  EXPECT_EQ(RedA, RedB); // Bitwise.
  EXPECT_EQ(RT.field(DA).Data, PRT.field(DB).Data);
  EXPECT_EQ(RT.ledger().CommCycles, PRT.ledger().CommCycles);
}

TEST_F(RuntimeTest, TransposeRequiresTransposedExtents) {
  int Src = makeSeqField({4, 8});
  // Same (untransposed) extents: the coordinate swap would read out of
  // range, so the runtime reports a structured shape mismatch instead.
  int Bad = RT.allocField(RT.getGeometry({4, 8}, {1, 1}), ElemKind::Real);
  support::RtStatus St = RT.transpose(Bad, Src);
  EXPECT_FALSE(St.isOk());
  EXPECT_EQ(St.code(), support::RtCode::ShapeMismatch);
  EXPECT_NE(St.message().find("transpose"), std::string::npos);
  // The transposed destination geometry works and moves every element.
  int Good = RT.allocField(RT.getGeometry({8, 4}, {1, 1}), ElemKind::Real);
  ASSERT_TRUE(RT.transpose(Good, Src).isOk());
  EXPECT_DOUBLE_EQ(at(Good, {5, 2}), at(Src, {2, 5}));
  EXPECT_DOUBLE_EQ(at(Good, {0, 3}), at(Src, {3, 0}));
}

TEST_F(RuntimeTest, EoshiftChargesBoundaryFillStores) {
  // A shift past the whole extent fills every destination element: no
  // element moves, but every store still costs a local cycle. 64 elems
  // over 8 PEs at GridLocalPerElem=1.0: startup + 64/8 exactly.
  int Src = makeSeqField({64});
  int Dst = RT.allocField(RT.field(Src).Geo, ElemKind::Real);
  RT.ledger().reset();
  ASSERT_TRUE(RT.eoshift(Dst, Src, 1, 100).isOk());
  EXPECT_DOUBLE_EQ(RT.ledger().CommCycles,
                   Costs.CommStartupCycles + 64.0 / 8.0);
  EXPECT_DOUBLE_EQ(at(Dst, {0}), 0.0);
  EXPECT_DOUBLE_EQ(at(Dst, {63}), 0.0);
}

TEST_F(RuntimeTest, EoshiftLedgerIsExactIncludingFills) {
  // {64} over 8 PEs is 8-element blocks. Shift +2: per PE six elements
  // stay local and two cross one hop into the next block, except the last
  // PE whose top two positions are boundary fills. Exact charge:
  //   startup + (local 48 + fill 2 + 9.6 * 14 hops) / 8 PEs.
  int Src = makeSeqField({64});
  int Dst = RT.allocField(RT.field(Src).Geo, ElemKind::Real);
  RT.ledger().reset();
  ASSERT_TRUE(RT.eoshift(Dst, Src, 1, 2).isOk());
  EXPECT_DOUBLE_EQ(RT.ledger().CommCycles,
                   Costs.CommStartupCycles + (50.0 + 9.6 * 14.0) / 8.0);
}

TEST_F(RuntimeTest, MultiShiftMatchesUnfusedShifts) {
  CmRuntime Ref(Costs); // Unfused reference on an identical machine.
  auto fill = [](CmRuntime &R) {
    const Geometry *G = R.getGeometry({48}, {1});
    int H = R.allocField(G, ElemKind::Real);
    std::vector<int64_t> Coord(1);
    for (Coord[0] = 0; Coord[0] < 48; ++Coord[0])
      R.writeElement(H, Coord, 1.25 * static_cast<double>(Coord[0]) - 3.0);
    return H;
  };
  int Src = fill(RT), RefSrc = fill(Ref);
  int A = RT.allocField(RT.field(Src).Geo, ElemKind::Real);
  int B = RT.allocField(RT.field(Src).Geo, ElemKind::Real);
  int C = RT.allocField(RT.field(Src).Geo, ElemKind::Real);
  int RA = Ref.allocField(Ref.field(RefSrc).Geo, ElemKind::Real);
  int RB = Ref.allocField(Ref.field(RefSrc).Geo, ElemKind::Real);
  int RC = Ref.allocField(Ref.field(RefSrc).Geo, ElemKind::Real);

  RT.ledger().reset();
  Ref.ledger().reset();
  ASSERT_TRUE(RT.multiShift({{A, 1}, {B, -1}, {C, 5}}, Src, 1,
                            /*EndOff=*/false)
                  .isOk());
  ASSERT_TRUE(Ref.cshift(RA, RefSrc, 1, 1).isOk());
  ASSERT_TRUE(Ref.cshift(RB, RefSrc, 1, -1).isOk());
  ASSERT_TRUE(Ref.cshift(RC, RefSrc, 1, 5).isOk());

  EXPECT_EQ(RT.field(A).Data, Ref.field(RA).Data);
  EXPECT_EQ(RT.field(B).Data, Ref.field(RB).Data);
  EXPECT_EQ(RT.field(C).Data, Ref.field(RC).Data);
  // One startup instead of three; the per-element charges are identical.
  EXPECT_DOUBLE_EQ(RT.ledger().CommCycles,
                   Ref.ledger().CommCycles - 2.0 * Costs.CommStartupCycles);
}

TEST_F(RuntimeTest, MultiShiftEoshiftFillsAndCharges) {
  int Src = makeSeqField({32});
  int A = RT.allocField(RT.field(Src).Geo, ElemKind::Real);
  int B = RT.allocField(RT.field(Src).Geo, ElemKind::Real);
  ASSERT_TRUE(
      RT.multiShift({{A, 2}, {B, -3}}, Src, 1, /*EndOff=*/true).isOk());
  EXPECT_DOUBLE_EQ(at(A, {0}), 2);
  EXPECT_DOUBLE_EQ(at(A, {30}), 0); // Fill.
  EXPECT_DOUBLE_EQ(at(A, {31}), 0);
  EXPECT_DOUBLE_EQ(at(B, {0}), 0); // Fill.
  EXPECT_DOUBLE_EQ(at(B, {2}), 0);
  EXPECT_DOUBLE_EQ(at(B, {3}), 0);
  EXPECT_DOUBLE_EQ(at(B, {4}), 1);
  EXPECT_DOUBLE_EQ(at(B, {31}), 28);
}

TEST_F(RuntimeTest, MultiShiftAliasedDestinationMatchesUnfusedSequence) {
  // A clause whose destination is the source behaves exactly like the
  // unfused sequence: earlier clauses read the original values, the
  // aliased clause snapshots its own source.
  CmRuntime Ref(Costs);
  int Src = makeSeqField({16});
  int A = RT.allocField(RT.field(Src).Geo, ElemKind::Real);
  const Geometry *G = Ref.getGeometry({16}, {1});
  int RefSrc = Ref.allocField(G, ElemKind::Real);
  std::vector<int64_t> Coord(1);
  for (Coord[0] = 0; Coord[0] < 16; ++Coord[0])
    Ref.writeElement(RefSrc, Coord, static_cast<double>(Coord[0]));
  int RA = Ref.allocField(G, ElemKind::Real);

  ASSERT_TRUE(
      RT.multiShift({{A, 1}, {Src, 2}}, Src, 1, /*EndOff=*/false).isOk());
  ASSERT_TRUE(Ref.cshift(RA, RefSrc, 1, 1).isOk());
  ASSERT_TRUE(Ref.cshift(RefSrc, RefSrc, 1, 2).isOk());
  EXPECT_EQ(RT.field(A).Data, Ref.field(RA).Data);
  EXPECT_EQ(RT.field(Src).Data, Ref.field(RefSrc).Data);
}

TEST_F(RuntimeTest, MultiShiftRecoversFaultsLikeUnfusedShifts) {
  // Transient grid timeouts and transfer corruption on the coalesced
  // exchange retry / roll back the whole exchange: values match a
  // fault-free machine, and recovery strictly raises the comm charge.
  support::FaultSpec Spec;
  std::string Error;
  ASSERT_TRUE(
      support::FaultSpec::parse("grid-timeout:0.4,corrupt:0.4", Spec, Error))
      << Error;
  support::FaultInjector Injector(Spec, /*Seed=*/7);
  CmRuntime Ref(Costs);

  int Src = makeSeqField({48});
  int A = RT.allocField(RT.field(Src).Geo, ElemKind::Real);
  int B = RT.allocField(RT.field(Src).Geo, ElemKind::Real);
  const Geometry *G = Ref.getGeometry({48}, {1});
  int RefSrc = Ref.allocField(G, ElemKind::Real);
  std::vector<int64_t> Coord(1);
  for (Coord[0] = 0; Coord[0] < 48; ++Coord[0])
    Ref.writeElement(RefSrc, Coord, static_cast<double>(Coord[0]));
  int RA = Ref.allocField(G, ElemKind::Real);
  int RB = Ref.allocField(G, ElemKind::Real);
  ASSERT_TRUE(Ref.cshift(RA, RefSrc, 1, 3).isOk());
  ASSERT_TRUE(Ref.cshift(RB, RefSrc, 1, -3).isOk());
  double CleanCharge = 0;
  {
    CmRuntime Clean(Costs);
    int CSrc = Clean.allocField(Clean.getGeometry({48}, {1}),
                                ElemKind::Real);
    int CA = Clean.allocField(Clean.field(CSrc).Geo, ElemKind::Real);
    int CB = Clean.allocField(Clean.field(CSrc).Geo, ElemKind::Real);
    ASSERT_TRUE(Clean.multiShift({{CA, 3}, {CB, -3}}, CSrc, 1, false).isOk());
    CleanCharge = Clean.ledger().CommCycles;
  }

  RT.setFaultInjector(&Injector);
  RT.ledger().reset();
  for (int I = 0; I < 4; ++I)
    ASSERT_TRUE(RT.multiShift({{A, 3}, {B, -3}}, Src, 1, false).isOk());
  RT.setFaultInjector(nullptr);
  EXPECT_EQ(RT.field(A).Data, Ref.field(RA).Data);
  EXPECT_EQ(RT.field(B).Data, Ref.field(RB).Data);
  EXPECT_GT(Injector.counters().Retries, 0u);
  // Recovery is never free: four exchanges with faults cost strictly more
  // than four fault-free ones.
  EXPECT_GT(RT.ledger().CommCycles, 4.0 * CleanCharge);
}

TEST_F(RuntimeTest, SectionCopyReversedOverlapKeepsVectorSemantics) {
  // l(1:8) = l(8:1:-1): a self-reversal. Every read gathers before any
  // write scatters, so the result is the exact reversal, not a partially
  // overwritten mix.
  int H = makeSeqField({8});
  std::vector<CmRuntime::SectionDim> DstSec = {{0, 1, 8}};
  std::vector<CmRuntime::SectionDim> SrcSec = {{7, -1, 8}};
  ASSERT_TRUE(RT.sectionCopy(H, DstSec, H, SrcSec).isOk());
  for (int64_t I = 0; I < 8; ++I)
    EXPECT_DOUBLE_EQ(at(H, {I}), static_cast<double>(7 - I));
}

TEST_F(RuntimeTest, SectionCopyStridedOverlapKeepsVectorSemantics) {
  // l(2:8:2) = l(1:7:2) on one array: interleaved stride-2 sections.
  int H = makeSeqField({8}); // 0..7
  std::vector<CmRuntime::SectionDim> DstSec = {{1, 2, 4}};
  std::vector<CmRuntime::SectionDim> SrcSec = {{0, 2, 4}};
  ASSERT_TRUE(RT.sectionCopy(H, DstSec, H, SrcSec).isOk());
  EXPECT_DOUBLE_EQ(at(H, {0}), 0);
  EXPECT_DOUBLE_EQ(at(H, {1}), 0);
  EXPECT_DOUBLE_EQ(at(H, {3}), 2);
  EXPECT_DOUBLE_EQ(at(H, {5}), 4);
  EXPECT_DOUBLE_EQ(at(H, {7}), 6);
  EXPECT_DOUBLE_EQ(at(H, {2}), 2); // Untouched odd positions... even src.
}

} // namespace
