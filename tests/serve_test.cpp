//===- tests/serve_test.cpp - batch service unit tests ----------------------===//
//
// Part of the Fortran-90-Y reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The serving subsystem's contracts: strict manifest parsing, the
/// content-addressed artifact cache (compile exactly once, even under
/// concurrent first requests), deterministic job records at any worker
/// count, admission control, timeout/retry classification, and the
/// routine cache's concurrent-engine safety.
///
//===----------------------------------------------------------------------===//

#include "serve/Scheduler.h"

#include "driver/Workloads.h"
#include "observe/Metrics.h"
#include "observe/Trace.h"
#include "peac/Engine.h"
#include "support/FileIO.h"

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <thread>
#include <vector>

using namespace f90y;
using namespace f90y::serve;

namespace {

/// A small valid program (paper Figure 12's statement on a tiny grid).
std::string smallSource() { return driver::figure12Source(8); }

driver::CompileOptions defaultOpts() {
  return driver::CompileOptions::forProfile(driver::Profile::F90Y);
}

//===----------------------------------------------------------------------===//
// Manifest parsing
//===----------------------------------------------------------------------===//

TEST(Manifest, ParsesJobsSkipsCommentsAndBlanks) {
  const std::string Text = "# header comment\n"
                           "\n"
                           "{\"id\":\"a\",\"source\":\"x\"}\n"
                           "   # indented comment\n"
                           "{\"source\":\"y\",\"profile\":\"cmf\","
                           "\"pes\":64,\"cm5\":true,\"exec\":\"interp\","
                           "\"comm\":\"sync\",\"retries\":2,"
                           "\"fault_seed\":7,\"max_steps\":100}\n";
  auto Jobs = parseManifest(Text, "");
  ASSERT_EQ(Jobs.size(), 2u);
  EXPECT_TRUE(Jobs[0].Valid);
  EXPECT_EQ(Jobs[0].Id, "a");
  EXPECT_EQ(Jobs[0].Source, "x");
  EXPECT_EQ(Jobs[0].Threads, 1u) << "serve jobs default to 1 host thread";
  EXPECT_TRUE(Jobs[1].Valid);
  EXPECT_EQ(Jobs[1].Id, "job2") << "ids default to the manifest ordinal";
  EXPECT_EQ(Jobs[1].Prof, driver::Profile::CMFStyle);
  EXPECT_EQ(Jobs[1].Pes, 64u);
  EXPECT_TRUE(Jobs[1].Cm5);
  EXPECT_EQ(Jobs[1].Engine, peac::EngineKind::Interp);
  EXPECT_FALSE(Jobs[1].OverlapComm);
  EXPECT_EQ(Jobs[1].Retries, 2u);
  EXPECT_EQ(Jobs[1].FaultSeed, 7u);
  EXPECT_EQ(Jobs[1].MaxSteps, 100u);
}

TEST(Manifest, RejectsMalformedLinesWithoutKillingTheBatch) {
  const std::string Text =
      "{\"id\":\"ok\",\"source\":\"x\"}\n"
      "{not json\n"
      "[1,2]\n"
      "{\"id\":\"both\",\"source\":\"x\",\"source_path\":\"y\"}\n"
      "{\"id\":\"neither\"}\n"
      "{\"id\":\"typo\",\"source\":\"x\",\"wallclock\":5}\n"
      "{\"id\":\"badprof\",\"source\":\"x\",\"profile\":\"fast\"}\n"
      "{\"id\":\"badretry\",\"source\":\"x\",\"retries\":99}\n"
      "{\"id\":\"zeropes\",\"source\":\"x\",\"pes\":0}\n";
  auto Jobs = parseManifest(Text, "");
  ASSERT_EQ(Jobs.size(), 9u);
  EXPECT_TRUE(Jobs[0].Valid);
  for (size_t I = 1; I < Jobs.size(); ++I) {
    EXPECT_FALSE(Jobs[I].Valid) << "line " << I + 1;
    EXPECT_NE(Jobs[I].ParseError.find("line " + std::to_string(I + 1)),
              std::string::npos)
        << Jobs[I].ParseError;
  }
  EXPECT_NE(Jobs[5].ParseError.find("wallclock"), std::string::npos);
}

TEST(Manifest, ParsesFuseKeyAndRejectsBadValues) {
  const std::string Text =
      "{\"id\":\"on\",\"source\":\"x\",\"fuse\":\"on\"}\n"
      "{\"id\":\"off\",\"source\":\"x\",\"fuse\":\"off\"}\n"
      "{\"id\":\"default\",\"source\":\"x\"}\n"
      "{\"id\":\"bad\",\"source\":\"x\",\"fuse\":\"maybe\"}\n";
  auto Jobs = parseManifest(Text, "");
  ASSERT_EQ(Jobs.size(), 4u);
  EXPECT_TRUE(Jobs[0].Valid);
  EXPECT_TRUE(Jobs[0].Fuse);
  EXPECT_TRUE(Jobs[1].Valid);
  EXPECT_FALSE(Jobs[1].Fuse);
  EXPECT_TRUE(Jobs[2].Valid);
  EXPECT_TRUE(Jobs[2].Fuse) << "fusion defaults to on, like f90yc";
  EXPECT_FALSE(Jobs[3].Valid);
  EXPECT_NE(Jobs[3].ParseError.find("fuse"), std::string::npos)
      << Jobs[3].ParseError;
}

TEST(Manifest, ParsesLayoutKeyAndRejectsBadValues) {
  const std::string Text =
      "{\"id\":\"infer\",\"source\":\"x\",\"layout\":\"infer\"}\n"
      "{\"id\":\"canon\",\"source\":\"x\",\"layout\":\"canonical\"}\n"
      "{\"id\":\"default\",\"source\":\"x\"}\n"
      "{\"id\":\"bad\",\"source\":\"x\",\"layout\":\"auto\"}\n";
  auto Jobs = parseManifest(Text, "");
  ASSERT_EQ(Jobs.size(), 4u);
  EXPECT_TRUE(Jobs[0].Valid);
  EXPECT_TRUE(Jobs[0].LayoutInfer);
  EXPECT_TRUE(Jobs[1].Valid);
  EXPECT_FALSE(Jobs[1].LayoutInfer);
  EXPECT_TRUE(Jobs[2].Valid);
  EXPECT_TRUE(Jobs[2].LayoutInfer) << "layout defaults to infer, like f90yc";
  EXPECT_FALSE(Jobs[3].Valid);
  EXPECT_NE(Jobs[3].ParseError.find("layout"), std::string::npos)
      << Jobs[3].ParseError;
}

TEST(Manifest, UniquifiesDuplicateIdsInOrder) {
  const std::string Text = "{\"id\":\"x\",\"source\":\"1\"}\n"
                           "{\"id\":\"x\",\"source\":\"2\"}\n"
                           "{\"id\":\"x~2\",\"source\":\"3\"}\n"
                           "{\"id\":\"x\",\"source\":\"4\"}\n";
  auto Jobs = parseManifest(Text, "");
  ASSERT_EQ(Jobs.size(), 4u);
  EXPECT_EQ(Jobs[0].Id, "x");
  EXPECT_EQ(Jobs[1].Id, "x~3") << "x~2 was already taken by line 3";
  EXPECT_EQ(Jobs[2].Id, "x~2");
  EXPECT_EQ(Jobs[3].Id, "x~4");
}

TEST(Manifest, ResolvesSourcePathAgainstBaseDir) {
  const std::string Dir = ::testing::TempDir();
  const std::string Src = smallSource();
  ASSERT_TRUE(
      support::atomicWriteFile(Dir + "/serve_manifest_src.f90", Src));
  auto Jobs = parseManifest(
      "{\"id\":\"f\",\"source_path\":\"serve_manifest_src.f90\"}\n"
      "{\"id\":\"missing\",\"source_path\":\"no_such.f90\"}\n",
      Dir);
  ASSERT_EQ(Jobs.size(), 2u);
  EXPECT_TRUE(Jobs[0].Valid);
  EXPECT_EQ(Jobs[0].Source, Src);
  EXPECT_FALSE(Jobs[1].Valid);
  EXPECT_NE(Jobs[1].ParseError.find("source_path"), std::string::npos);
  std::remove((Dir + "/serve_manifest_src.f90").c_str());
}

//===----------------------------------------------------------------------===//
// Fingerprinting and the artifact cache
//===----------------------------------------------------------------------===//

TEST(ArtifactCache, FingerprintCanonicalizesByteNoise) {
  const auto Opts = defaultOpts();
  const uint64_t Base = ArtifactCache::fingerprint("program p\nend\n", Opts);
  EXPECT_EQ(ArtifactCache::fingerprint("program p\r\nend\r\n", Opts), Base);
  EXPECT_EQ(ArtifactCache::fingerprint("program p\nend", Opts), Base);
  EXPECT_EQ(ArtifactCache::fingerprint("program p\nend\n\n\n", Opts), Base);
  EXPECT_NE(ArtifactCache::fingerprint("program q\nend\n", Opts), Base);
}

TEST(ArtifactCache, FingerprintKeysOnOptionsAndMachine) {
  const std::string Src = "program p\nend\n";
  const uint64_t Base = ArtifactCache::fingerprint(Src, defaultOpts());
  EXPECT_NE(ArtifactCache::fingerprint(
                Src, driver::CompileOptions::forProfile(
                         driver::Profile::Naive)),
            Base);
  auto Opts = defaultOpts();
  Opts.Costs.NumPEs *= 2;
  EXPECT_NE(ArtifactCache::fingerprint(Src, Opts), Base);
  Opts = defaultOpts();
  Opts.Costs.VectorMaddCycles += 1;
  EXPECT_NE(ArtifactCache::fingerprint(Src, Opts), Base);
}

TEST(ArtifactCache, FuseOnAndOffNeverShareAnArtifact) {
  // fuse= participates in the fingerprint: a fused and an unfused job for
  // the same source must never be served from one compilation, and the
  // distinction must survive byte noise in the source.
  const std::string Src = smallSource();
  auto On = defaultOpts();
  On.Transforms.Fusion = true;
  auto Off = defaultOpts();
  Off.Transforms.Fusion = false;
  const uint64_t FpOn = ArtifactCache::fingerprint(Src, On);
  const uint64_t FpOff = ArtifactCache::fingerprint(Src, Off);
  EXPECT_NE(FpOn, FpOff);
  // Canonicalization still applies within each setting.
  EXPECT_EQ(ArtifactCache::fingerprint(Src + "\n\n", On), FpOn);
  EXPECT_EQ(ArtifactCache::fingerprint(Src + "\n\n", Off), FpOff);
}

TEST(ArtifactCache, LayoutInferAndCanonicalNeverShareAnArtifact) {
  // layout= participates in the fingerprint: a realigned program's host
  // code stores its fields differently, so an infer and a canonical job
  // for the same source must never be served from one compilation.
  const std::string Src = smallSource();
  auto Infer = defaultOpts();
  Infer.Transforms.Layout = true;
  auto Canon = defaultOpts();
  Canon.Transforms.Layout = false;
  const uint64_t FpInfer = ArtifactCache::fingerprint(Src, Infer);
  const uint64_t FpCanon = ArtifactCache::fingerprint(Src, Canon);
  EXPECT_NE(FpInfer, FpCanon);
  // Canonicalization still applies within each setting.
  EXPECT_EQ(ArtifactCache::fingerprint(Src + "\n\n", Infer), FpInfer);
  EXPECT_EQ(ArtifactCache::fingerprint(Src + "\n\n", Canon), FpCanon);
}

TEST(ArtifactCache, ConcurrentFirstRequestsCompileExactlyOnce) {
  ArtifactCache Cache;
  const std::string Src = smallSource();
  const auto Opts = defaultOpts();
  const uint64_t FP = ArtifactCache::fingerprint(Src, Opts);
  std::atomic<int> Compiles{0};
  std::vector<std::thread> Threads;
  std::vector<ArtifactCache::EntryPtr> Entries(8);
  for (int T = 0; T < 8; ++T)
    Threads.emplace_back([&, T] {
      Entries[T] = Cache.get(FP, [&] {
        ++Compiles;
        return compileEntry(Src, defaultOpts());
      });
    });
  for (auto &T : Threads)
    T.join();
  EXPECT_EQ(Compiles.load(), 1);
  EXPECT_EQ(Cache.misses(), 1u);
  EXPECT_EQ(Cache.hits(), 7u);
  for (const auto &E : Entries) {
    ASSERT_TRUE(E);
    EXPECT_EQ(E, Entries[0]) << "every requester shares one entry";
    EXPECT_TRUE(E->Ok);
    ASSERT_TRUE(E->Comp);
  }
}

TEST(ArtifactCache, CachesFailedCompilations) {
  ArtifactCache Cache;
  const std::string Bad = "program p\n  x = (\nend\n";
  const uint64_t FP = ArtifactCache::fingerprint(Bad, defaultOpts());
  int Compiles = 0;
  auto Get = [&] {
    return Cache.get(FP, [&] {
      ++Compiles;
      return compileEntry(Bad, defaultOpts());
    });
  };
  auto E1 = Get();
  auto E2 = Get();
  EXPECT_EQ(Compiles, 1) << "the failure is cached, not recompiled";
  EXPECT_FALSE(E1->Ok);
  EXPECT_FALSE(E1->Comp);
  EXPECT_FALSE(E1->DiagText.empty());
  EXPECT_EQ(E1, E2);
}

//===----------------------------------------------------------------------===//
// runBatch
//===----------------------------------------------------------------------===//

/// The mixed workload used by the determinism and classification tests:
/// good jobs sharing one program, a private variant, a compile error, an
/// invalid line, a watchdog timeout, a permanent fault with retries, and
/// a recoverable-fault job.
std::string mixedManifest() {
  auto Quote = [](const std::string &S) {
    std::string Out;
    for (char C : S) {
      if (C == '\n')
        Out += "\\n";
      else if (C == '"')
        Out += "\\\"";
      else
        Out += C;
    }
    return Out;
  };
  const std::string Small = Quote(smallSource());
  const std::string Swe = Quote(driver::sweSource(16, 2));
  std::string M;
  M += "{\"id\":\"a\",\"source\":\"" + Small + "\"}\n";
  M += "{\"id\":\"b\",\"source\":\"" + Small + "\"}\n";
  M += "{\"id\":\"naive\",\"source\":\"" + Small +
       "\",\"profile\":\"naive\"}\n";
  M += "{\"id\":\"bad\",\"source\":\"program p\\n  x = (\\nend\\n\"}\n";
  M += "{malformed\n";
  M += "{\"id\":\"wd\",\"source\":\"" + Swe +
       "\",\"max_steps\":2,\"retries\":3}\n";
  M += "{\"id\":\"fatal\",\"source\":\"" + Small +
       "\",\"faults\":\"oom:1\",\"retries\":2}\n";
  M += "{\"id\":\"flaky\",\"source\":\"" + Swe +
       "\",\"faults\":\"corrupt:0.05\",\"fault_seed\":7,\"retries\":3}\n";
  return M;
}

BatchResult runMixed(unsigned Workers, ArtifactCache *Cache,
                     observe::MetricsRegistry *Metrics,
                     observe::TraceRecorder *Trace) {
  ServeOptions Opts;
  Opts.Workers = Workers;
  Opts.Cache = Cache;
  Opts.Metrics = Metrics;
  Opts.Trace = Trace;
  return runBatch(parseManifest(mixedManifest(), ""), Opts);
}

TEST(RunBatch, ClassifiesTheMixedWorkload) {
  ArtifactCache Cache;
  BatchResult B = runMixed(8, &Cache, nullptr, nullptr);
  ASSERT_EQ(B.Records.size(), 8u);
  EXPECT_EQ(B.Ok, 4u);
  EXPECT_EQ(B.CompileErrors, 1u);
  EXPECT_EQ(B.Invalid, 1u);
  EXPECT_EQ(B.Timeouts, 1u);
  EXPECT_EQ(B.RuntimeErrors, 1u);
  EXPECT_FALSE(B.allOk());

  // "a" and "b" share one fingerprint: a compiles cold, b shared.
  EXPECT_EQ(B.Records[0].Status, JobStatus::Ok);
  EXPECT_STREQ(B.Records[0].Compile, "cold");
  EXPECT_STREQ(B.Records[1].Compile, "shared");
  EXPECT_STREQ(B.Records[2].Compile, "cold") << "naive profile rekeys";
  EXPECT_TRUE(B.Records[0].HasReport);
  EXPECT_EQ(B.Records[0].Output, B.Records[1].Output);

  EXPECT_EQ(B.Records[3].Status, JobStatus::CompileError);
  EXPECT_FALSE(B.Records[3].Error.empty());
  EXPECT_EQ(B.Records[4].Status, JobStatus::Invalid);

  // The watchdog is deterministic: classified timeout, never retried.
  EXPECT_EQ(B.Records[5].Status, JobStatus::Timeout);
  EXPECT_EQ(B.Records[5].Attempts, 1u);
  EXPECT_NE(B.Records[5].Error.find("watchdog"), std::string::npos);

  // A permanent fault burns every retry then lands as a runtime error.
  EXPECT_EQ(B.Records[6].Status, JobStatus::RuntimeError);
  EXPECT_EQ(B.Records[6].Attempts, 3u);

  // Cache totals are a pure function of the job set: 4 distinct
  // fingerprints among the 7 valid jobs, so 4 misses and 3 hits.
  EXPECT_EQ(B.CacheMisses, 4u);
  EXPECT_EQ(B.CacheHits, 3u);
}

TEST(RunBatch, WorkerCountIsUnobservable) {
  // The acceptance bar: a mixed manifest (faults included) produces
  // byte-identical records, outputs, and normalized metric/trace exports
  // at -workers=1 and -workers=8.
  ArtifactCache C1, C8;
  observe::MetricsRegistry M1, M8;
  observe::TraceRecorder T1, T8;
  BatchResult B1 = runMixed(1, &C1, &M1, &T1);
  BatchResult B8 = runMixed(8, &C8, &M8, &T8);
  EXPECT_EQ(B1.resultsJsonl(), B8.resultsJsonl());
  EXPECT_EQ(M1.exportJson(), M8.exportJson());
  EXPECT_EQ(T1.exportJson(/*NormalizeWall=*/true),
            T8.exportJson(/*NormalizeWall=*/true));
  ASSERT_EQ(B1.Records.size(), B8.Records.size());
  for (size_t I = 0; I < B1.Records.size(); ++I) {
    EXPECT_EQ(B1.Records[I].Output, B8.Records[I].Output) << I;
    EXPECT_EQ(B1.Records[I].HasReport, B8.Records[I].HasReport) << I;
    if (B1.Records[I].HasReport)
      EXPECT_EQ(B1.Records[I].Report.json(), B8.Records[I].Report.json())
          << I;
  }
}

TEST(RunBatch, SharedCacheSurvivesBatches) {
  // A second batch over a warm cache: every good job reuses a resident
  // compilation ("shared"), and the new batch's miss delta is zero for
  // the repeated fingerprints.
  ArtifactCache Cache;
  BatchResult First = runMixed(4, &Cache, nullptr, nullptr);
  EXPECT_EQ(First.CacheMisses, 4u);
  BatchResult Second = runMixed(4, &Cache, nullptr, nullptr);
  EXPECT_EQ(Second.CacheMisses, 0u);
  EXPECT_EQ(Second.CacheHits, 7u);
  EXPECT_STREQ(Second.Records[0].Compile, "shared");
  EXPECT_STREQ(Second.Records[2].Compile, "shared");
  EXPECT_EQ(First.Records[0].Output, Second.Records[0].Output);
}

TEST(RunBatch, NullCacheCompilesPrivately) {
  BatchResult B = runMixed(4, nullptr, nullptr, nullptr);
  EXPECT_EQ(B.Ok, 4u);
  EXPECT_STREQ(B.Records[0].Compile, "private");
  EXPECT_STREQ(B.Records[1].Compile, "private");
  EXPECT_EQ(B.CacheHits, 0u);
  EXPECT_EQ(B.CacheMisses, 0u);
}

TEST(RunBatch, AdmissionControlShedsExcessJobs) {
  ArtifactCache Cache;
  ServeOptions Opts;
  Opts.Workers = 4;
  Opts.Cache = &Cache;
  Opts.QueueLimit = 3;
  BatchResult B = runBatch(parseManifest(mixedManifest(), ""), Opts);
  ASSERT_EQ(B.Records.size(), 8u);
  EXPECT_EQ(B.Admitted, 3u);
  EXPECT_EQ(B.Rejected, 5u);
  EXPECT_EQ(B.Ok, 3u) << "the first three jobs are the good ones";
  for (size_t I = 3; I < 8; ++I) {
    EXPECT_EQ(B.Records[I].Status, JobStatus::Rejected) << I;
    EXPECT_EQ(B.Records[I].Attempts, 0u) << "rejected jobs never execute";
    EXPECT_NE(B.Records[I].Error.find("admission"), std::string::npos);
  }
}

TEST(RunBatch, EmitsServeMetricsAndPerJobSpans) {
  ArtifactCache Cache;
  observe::MetricsRegistry M;
  observe::TraceRecorder T;
  BatchResult B = runMixed(4, &Cache, &M, &T);
  EXPECT_EQ(M.value("serve.jobs.total"), 8.0);
  EXPECT_EQ(M.value("serve.jobs.ok"), 4.0);
  EXPECT_EQ(M.value("serve.jobs.failed"), 2.0)
      << "compile errors + runtime errors";
  EXPECT_EQ(M.value("serve.jobs.timeout"), 1.0);
  EXPECT_EQ(M.value("serve.jobs.invalid"), 1.0);
  EXPECT_EQ(M.value("serve.jobs.retried"), 2.0)
      << "the permanent-fault job retried twice";
  EXPECT_EQ(M.value("serve.cache.misses"), 4.0);
  EXPECT_EQ(M.value("serve.cache.hits"), 3.0);
  EXPECT_EQ(M.value("serve.queue.depth"), 8.0);
  // One span per job plus the batch span.
  EXPECT_EQ(T.eventCount(), B.Records.size() + 1);
  const std::string Json = T.exportJson(/*NormalizeWall=*/true);
  EXPECT_NE(Json.find("\"job:a\""), std::string::npos);
  EXPECT_NE(Json.find("\"serve.batch\""), std::string::npos);
}

TEST(RunBatch, WritesPerJobArtifactsAndResults) {
  const std::string Dir = ::testing::TempDir() + "f90y_serve_out_test";
  std::filesystem::remove_all(Dir);
  std::filesystem::create_directories(Dir);
  ArtifactCache Cache;
  ServeOptions Opts;
  Opts.Workers = 4;
  Opts.Cache = &Cache;
  Opts.OutDir = Dir;
  BatchResult B = runBatch(parseManifest(mixedManifest(), ""), Opts);
  EXPECT_EQ(B.IoFailures, 0u);
  std::string Text;
  ASSERT_TRUE(support::readFile(Dir + "/results.jsonl", Text));
  EXPECT_EQ(Text, B.resultsJsonl());
  ASSERT_TRUE(support::readFile(Dir + "/a.out", Text));
  EXPECT_EQ(Text, B.Records[0].Output);
  ASSERT_TRUE(support::readFile(Dir + "/a.stats.json", Text));
  EXPECT_EQ(Text, B.Records[0].Report.json());
  ASSERT_TRUE(support::readFile(Dir + "/bad.err", Text));
  EXPECT_EQ(Text, B.Records[3].Error + "\n");
  std::filesystem::remove_all(Dir);
}

//===----------------------------------------------------------------------===//
// RoutineCache under concurrent engines (satellite regression)
//===----------------------------------------------------------------------===//

TEST(RoutineCacheStress, ConcurrentEnginesTranslateEachRoutineOnce) {
  // Eight Executions of one shared compilation, first-touching the
  // process routine cache simultaneously. Translation happens under the
  // cache lock, so the miss count equals the routine count exactly - no
  // duplicate translations, no torn map - and every run's output matches.
  const std::string Src = driver::sweSource(16, 2);
  auto Entry = compileEntry(Src, defaultOpts());
  ASSERT_TRUE(Entry->Ok);

  // Learn the routine count from a clean serial run.
  peac::RoutineCache &RC = peac::RoutineCache::process();
  RC.clear();
  const uint64_t Hits0 = RC.hits(), Misses0 = RC.misses();
  driver::ExecutionOptions EOpts;
  EOpts.Threads = 1;
  std::string Expected;
  {
    driver::Execution Exec(Entry->Comp->options().Costs, EOpts);
    auto Report = Exec.run(Entry->Comp->artifacts().Compiled.Program);
    ASSERT_TRUE(Report.has_value());
    Expected = Report->Output;
  }
  // The serial run's cache traffic: Routines distinct translations, and
  // one lookup per dispatch (a routine dispatched every timestep looks
  // up every time).
  const uint64_t Routines = RC.misses() - Misses0;
  const uint64_t LookupsPerRun =
      (RC.hits() - Hits0) + (RC.misses() - Misses0);
  ASSERT_GT(Routines, 0u);

  RC.clear();
  const uint64_t H1 = RC.hits(), M1 = RC.misses();
  constexpr int NumThreads = 8;
  std::vector<std::string> Outputs(NumThreads);
  std::vector<std::thread> Threads;
  for (int T = 0; T < NumThreads; ++T)
    Threads.emplace_back([&, T] {
      driver::ExecutionOptions TO;
      TO.Threads = 1;
      driver::Execution Exec(Entry->Comp->options().Costs, TO);
      auto Report = Exec.run(Entry->Comp->artifacts().Compiled.Program);
      if (Report)
        Outputs[T] = Report->Output;
    });
  for (auto &T : Threads)
    T.join();
  for (const std::string &O : Outputs)
    EXPECT_EQ(O, Expected);
  EXPECT_EQ(RC.misses() - M1, Routines)
      << "each routine translated exactly once despite 8 racing engines";
  EXPECT_EQ((RC.hits() - H1) + (RC.misses() - M1),
            LookupsPerRun * NumThreads)
      << "every lookup was either the one translation or a hit";
}

} // namespace
