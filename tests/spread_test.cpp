//===- tests/spread_test.cpp - SPREAD broadcast intrinsic --------------------===//
//
// Part of the Fortran-90-Y reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "driver/Driver.h"
#include "interp/Interpreter.h"

#include <gtest/gtest.h>

using namespace f90y;
using namespace f90y::driver;

namespace {

cm2::CostModel small() {
  cm2::CostModel C;
  C.NumPEs = 16;
  return C;
}

class SpreadTest : public ::testing::Test {
protected:
  DiagnosticEngine IDiags;
  interp::Interpreter Interp{IDiags};
  std::optional<Execution> Exec;
  Compilation C{CompileOptions::forProfile(Profile::F90Y, small())};

  void runBoth(const std::string &Src) {
    ASSERT_TRUE(C.compile(Src)) << C.diags().str();
    ASSERT_TRUE(Interp.run(C.artifacts().RawNIR)) << IDiags.str();
    Exec.emplace(small());
    ASSERT_TRUE(Exec->run(C.artifacts().Compiled.Program).has_value())
        << Exec->diags().str();
  }

  double at(const std::string &Name, std::vector<int64_t> Pos) {
    int H = Exec->executor().fieldHandle(Name);
    EXPECT_GE(H, 0);
    return Exec->runtime().readElement(H, Pos);
  }

  void agrees(const std::string &Name) {
    const interp::ArrayStorage *Ref = Interp.getArray(Name);
    ASSERT_NE(Ref, nullptr) << Name;
    std::vector<int64_t> Pos(Ref->Extents.size(), 0);
    bool Done = false;
    while (!Done) {
      EXPECT_NEAR(at(Name, Pos), Ref->Data[Ref->linearIndex(Pos)].asReal(),
                  1e-9)
          << Name;
      size_t K = Pos.size();
      Done = true;
      while (K-- > 0) {
        if (++Pos[K] < Ref->Extents[K].size()) {
          Done = false;
          break;
        }
        Pos[K] = 0;
      }
    }
  }
};

TEST_F(SpreadTest, RowBroadcastAlongDim1) {
  runBoth("program p\n"
          "integer v(5)\n"
          "integer a(3,5)\n"
          "integer i\n"
          "do i=1,5\n"
          "  v(i) = 10*i\n"
          "end do\n"
          "a = spread(v, 1, 3)\n"
          "end\n");
  EXPECT_DOUBLE_EQ(at("a", {0, 0}), 10);
  EXPECT_DOUBLE_EQ(at("a", {2, 0}), 10);
  EXPECT_DOUBLE_EQ(at("a", {1, 4}), 50);
  agrees("a");
}

TEST_F(SpreadTest, ColumnBroadcastAlongDim2) {
  runBoth("program p\n"
          "integer v(3)\n"
          "integer a(3,5)\n"
          "integer i\n"
          "do i=1,3\n"
          "  v(i) = i\n"
          "end do\n"
          "a = spread(v, dim=2, ncopies=5)\n"
          "end\n");
  EXPECT_DOUBLE_EQ(at("a", {0, 0}), 1);
  EXPECT_DOUBLE_EQ(at("a", {0, 4}), 1);
  EXPECT_DOUBLE_EQ(at("a", {2, 3}), 3);
  agrees("a");
}

TEST_F(SpreadTest, SpreadInsideExpression) {
  // Broadcast feeding elemental arithmetic: extraction hoists the spread
  // into a temporary, the remainder runs on the PEs.
  runBoth("program p\n"
          "real v(4), a(4,4), b(4,4)\n"
          "integer i, j\n"
          "do i=1,4\n"
          "  v(i) = 0.5*i\n"
          "end do\n"
          "forall (i=1:4, j=1:4) a(i,j) = real(i*j)\n"
          "b = a * spread(v, 1, 4) + 1.0\n"
          "end\n");
  agrees("b");
}

TEST_F(SpreadTest, SpreadThenReduceRoundTrips) {
  // sum(spread(v,1,n), dim=1) == n*v.
  runBoth("program p\n"
          "integer v(6), r(6)\n"
          "integer a(4,6)\n"
          "integer i\n"
          "do i=1,6\n"
          "  v(i) = i*i\n"
          "end do\n"
          "a = spread(v, 1, 4)\n"
          "r = sum(a, 1)\n"
          "end\n");
  EXPECT_DOUBLE_EQ(at("r", {0}), 4);
  EXPECT_DOUBLE_EQ(at("r", {5}), 144);
  agrees("r");
}

TEST_F(SpreadTest, RejectsShapeMismatch) {
  Compilation Bad(CompileOptions::forProfile(Profile::F90Y, small()));
  EXPECT_FALSE(Bad.compile("program p\n"
                           "integer v(5), a(3,5)\n"
                           "a = spread(v, 1, 2)\n" // 2 copies != 3 rows.
                           "end\n"));
  EXPECT_TRUE(Bad.diags().hasErrors());
}

TEST_F(SpreadTest, RejectsNonConstantArguments) {
  Compilation Bad(CompileOptions::forProfile(Profile::F90Y, small()));
  EXPECT_FALSE(Bad.compile("program p\n"
                           "integer v(5), a(3,5), n\n"
                           "n = 3\n"
                           "a = spread(v, 1, n)\n"
                           "end\n"));
  EXPECT_NE(Bad.diags().str().find("compile-time constants"),
            std::string::npos);
}

} // namespace
