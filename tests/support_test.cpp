//===- tests/support_test.cpp - support library unit tests -----------------===//
//
// Part of the Fortran-90-Y reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Casting.h"
#include "support/Diagnostics.h"
#include "support/SourceLocation.h"
#include "support/StringUtil.h"

#include <gtest/gtest.h>

using namespace f90y;

namespace {

// A small hierarchy exercising the casting templates.
struct Animal {
  enum class Kind { Dog, Cat };
  Kind K;
  explicit Animal(Kind K) : K(K) {}
};
struct Dog : Animal {
  Dog() : Animal(Kind::Dog) {}
  static bool classof(const Animal *A) { return A->K == Kind::Dog; }
};
struct Cat : Animal {
  Cat() : Animal(Kind::Cat) {}
  static bool classof(const Animal *A) { return A->K == Kind::Cat; }
};

TEST(Casting, IsaDistinguishesKinds) {
  Dog D;
  Cat C;
  const Animal *AD = &D, *AC = &C;
  EXPECT_TRUE(isa<Dog>(AD));
  EXPECT_FALSE(isa<Cat>(AD));
  EXPECT_TRUE(isa<Cat>(AC));
  EXPECT_FALSE(isa<Dog>(AC));
}

TEST(Casting, DynCastReturnsNullOnMismatch) {
  Dog D;
  const Animal *A = &D;
  EXPECT_NE(dyn_cast<Dog>(A), nullptr);
  EXPECT_EQ(dyn_cast<Cat>(A), nullptr);
}

TEST(Casting, CastPreservesPointerIdentity) {
  Dog D;
  Animal *A = &D;
  EXPECT_EQ(cast<Dog>(A), &D);
}

TEST(Casting, DynCastOrNullToleratesNull) {
  const Animal *A = nullptr;
  EXPECT_EQ(dyn_cast_or_null<Dog>(A), nullptr);
}

TEST(SourceLocation, DefaultIsInvalid) {
  SourceLocation Loc;
  EXPECT_FALSE(Loc.isValid());
  EXPECT_EQ(Loc.str(), "<unknown>");
}

TEST(SourceLocation, StrRendersLineColumn) {
  SourceLocation Loc(12, 7);
  EXPECT_TRUE(Loc.isValid());
  EXPECT_EQ(Loc.str(), "12:7");
}

TEST(Diagnostics, CountsOnlyErrors) {
  DiagnosticEngine Diags;
  Diags.warning(SourceLocation(1, 1), "something mildly off");
  EXPECT_FALSE(Diags.hasErrors());
  Diags.error(SourceLocation(2, 3), "something broken");
  Diags.note(SourceLocation(2, 4), "broken right here");
  EXPECT_TRUE(Diags.hasErrors());
  EXPECT_EQ(Diags.errorCount(), 1u);
  EXPECT_EQ(Diags.diagnostics().size(), 3u);
}

TEST(Diagnostics, StrFormatsLLVMStyle) {
  DiagnosticEngine Diags;
  Diags.error(SourceLocation(3, 9), "shape mismatch");
  EXPECT_EQ(Diags.str(), "error: 3:9: shape mismatch\n");
}

TEST(Diagnostics, ClearResets) {
  DiagnosticEngine Diags;
  Diags.error(SourceLocation(), "boom");
  Diags.clear();
  EXPECT_FALSE(Diags.hasErrors());
  EXPECT_TRUE(Diags.diagnostics().empty());
}

TEST(StringUtil, ToLowerUpper) {
  EXPECT_EQ(toLower("CShift"), "cshift");
  EXPECT_EQ(toUpper("cshift"), "CSHIFT");
  EXPECT_EQ(toLower(""), "");
}

TEST(StringUtil, Join) {
  EXPECT_EQ(join({}, ", "), "");
  EXPECT_EQ(join({"a"}, ", "), "a");
  EXPECT_EQ(join({"a", "b", "c"}, " + "), "a + b + c");
}

TEST(StringUtil, FormatDoubleRoundTrips) {
  for (double V : {0.0, 1.0, -2.5, 0.1, 1e20, 1.0 / 3.0}) {
    std::string S = formatDouble(V);
    EXPECT_EQ(std::stod(S), V) << "failed to round-trip " << S;
  }
}

TEST(StringUtil, IsDigits) {
  EXPECT_TRUE(isDigits("0123"));
  EXPECT_FALSE(isDigits(""));
  EXPECT_FALSE(isDigits("12a"));
  EXPECT_FALSE(isDigits("-1"));
}

} // namespace
