//===- tests/support_test.cpp - support library unit tests -----------------===//
//
// Part of the Fortran-90-Y reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Casting.h"
#include "support/Diagnostics.h"
#include "support/FileIO.h"
#include "support/RtStatus.h"
#include "support/Serialize.h"
#include "support/SourceLocation.h"
#include "support/StringUtil.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <limits>
#include <thread>
#include <vector>

using namespace f90y;

namespace {

// A small hierarchy exercising the casting templates.
struct Animal {
  enum class Kind { Dog, Cat };
  Kind K;
  explicit Animal(Kind K) : K(K) {}
};
struct Dog : Animal {
  Dog() : Animal(Kind::Dog) {}
  static bool classof(const Animal *A) { return A->K == Kind::Dog; }
};
struct Cat : Animal {
  Cat() : Animal(Kind::Cat) {}
  static bool classof(const Animal *A) { return A->K == Kind::Cat; }
};

TEST(Casting, IsaDistinguishesKinds) {
  Dog D;
  Cat C;
  const Animal *AD = &D, *AC = &C;
  EXPECT_TRUE(isa<Dog>(AD));
  EXPECT_FALSE(isa<Cat>(AD));
  EXPECT_TRUE(isa<Cat>(AC));
  EXPECT_FALSE(isa<Dog>(AC));
}

TEST(Casting, DynCastReturnsNullOnMismatch) {
  Dog D;
  const Animal *A = &D;
  EXPECT_NE(dyn_cast<Dog>(A), nullptr);
  EXPECT_EQ(dyn_cast<Cat>(A), nullptr);
}

TEST(Casting, CastPreservesPointerIdentity) {
  Dog D;
  Animal *A = &D;
  EXPECT_EQ(cast<Dog>(A), &D);
}

TEST(Casting, DynCastOrNullToleratesNull) {
  const Animal *A = nullptr;
  EXPECT_EQ(dyn_cast_or_null<Dog>(A), nullptr);
}

TEST(SourceLocation, DefaultIsInvalid) {
  SourceLocation Loc;
  EXPECT_FALSE(Loc.isValid());
  EXPECT_EQ(Loc.str(), "<unknown>");
}

TEST(SourceLocation, StrRendersLineColumn) {
  SourceLocation Loc(12, 7);
  EXPECT_TRUE(Loc.isValid());
  EXPECT_EQ(Loc.str(), "12:7");
}

TEST(Diagnostics, CountsOnlyErrors) {
  DiagnosticEngine Diags;
  Diags.warning(SourceLocation(1, 1), "something mildly off");
  EXPECT_FALSE(Diags.hasErrors());
  Diags.error(SourceLocation(2, 3), "something broken");
  Diags.note(SourceLocation(2, 4), "broken right here");
  EXPECT_TRUE(Diags.hasErrors());
  EXPECT_EQ(Diags.errorCount(), 1u);
  EXPECT_EQ(Diags.diagnostics().size(), 3u);
}

TEST(Diagnostics, StrFormatsLLVMStyle) {
  DiagnosticEngine Diags;
  Diags.error(SourceLocation(3, 9), "shape mismatch");
  EXPECT_EQ(Diags.str(), "error: 3:9: shape mismatch\n");
}

TEST(Diagnostics, ClearResets) {
  DiagnosticEngine Diags;
  Diags.error(SourceLocation(), "boom");
  Diags.clear();
  EXPECT_FALSE(Diags.hasErrors());
  EXPECT_TRUE(Diags.diagnostics().empty());
}

TEST(Diagnostics, StrRendersAllKindsInOrder) {
  DiagnosticEngine Diags;
  Diags.warning(SourceLocation(1, 2), "deprecated form");
  Diags.error(SourceLocation(3, 4), "bad shape");
  Diags.note(SourceLocation(3, 5), "declared here");
  EXPECT_EQ(Diags.str(), "warning: 1:2: deprecated form\n"
                         "error: 3:4: bad shape\n"
                         "note: 3:5: declared here\n");
  EXPECT_EQ(Diags.errorCount(), 1u);
}

TEST(Diagnostics, InvalidLocationOmitsPosition) {
  DiagnosticEngine Diags;
  Diags.error(SourceLocation(), "runtime condition with no source");
  EXPECT_EQ(Diags.str(), "error: runtime condition with no source\n");
}

TEST(Diagnostics, WarningsAloneLeaveEngineClean) {
  DiagnosticEngine Diags;
  Diags.warning(SourceLocation(5, 1), "unused variable");
  Diags.warning(SourceLocation(9, 2), "implicit conversion");
  EXPECT_FALSE(Diags.hasErrors());
  EXPECT_EQ(Diags.errorCount(), 0u);
  EXPECT_EQ(Diags.diagnostics().size(), 2u);
  EXPECT_EQ(Diags.str(), "warning: 5:1: unused variable\n"
                         "warning: 9:2: implicit conversion\n");
}

TEST(RtStatus, OkByDefault) {
  support::RtStatus S;
  EXPECT_TRUE(S.isOk());
  EXPECT_TRUE(static_cast<bool>(S));
  EXPECT_EQ(S.code(), support::RtCode::Ok);
  EXPECT_EQ(S.str(), "ok");
}

TEST(RtStatus, FaultCarriesCodeAndMessage) {
  support::RtStatus S = support::RtStatus::fault(
      support::RtCode::CommFault, "cshift: link timed out");
  EXPECT_FALSE(S.isOk());
  EXPECT_FALSE(static_cast<bool>(S));
  EXPECT_EQ(S.code(), support::RtCode::CommFault);
  EXPECT_EQ(S.str(), "comm-fault: cshift: link timed out");
}

TEST(RtStatus, CodeNamesAreDistinct) {
  EXPECT_STREQ(support::rtCodeName(support::RtCode::DataCorrupt),
               "data-corrupt");
  EXPECT_STREQ(support::rtCodeName(support::RtCode::OutOfMemory),
               "out-of-memory");
  EXPECT_STREQ(support::rtCodeName(support::RtCode::StepLimit),
               "step-limit");
}

TEST(RtResult, HoldsValueOrStatus) {
  support::RtResult<int> Good(41);
  EXPECT_TRUE(Good.isOk());
  EXPECT_EQ(Good.value(), 41);

  support::RtResult<int> Bad(support::RtStatus::fault(
      support::RtCode::OutOfMemory, "heap exhausted"));
  EXPECT_FALSE(Bad.isOk());
  EXPECT_EQ(Bad.status().code(), support::RtCode::OutOfMemory);
}

TEST(RtStatusDeathTest, CheckFailedAbortsWithMessage) {
  EXPECT_DEATH(F90Y_CHECK(false, "the invariant text"),
               "the invariant text");
}

TEST(StringUtil, ToLowerUpper) {
  EXPECT_EQ(toLower("CShift"), "cshift");
  EXPECT_EQ(toUpper("cshift"), "CSHIFT");
  EXPECT_EQ(toLower(""), "");
}

TEST(StringUtil, Join) {
  EXPECT_EQ(join({}, ", "), "");
  EXPECT_EQ(join({"a"}, ", "), "a");
  EXPECT_EQ(join({"a", "b", "c"}, " + "), "a + b + c");
}

TEST(StringUtil, FormatDoubleRoundTrips) {
  for (double V : {0.0, 1.0, -2.5, 0.1, 1e20, 1.0 / 3.0}) {
    std::string S = formatDouble(V);
    EXPECT_EQ(std::stod(S), V) << "failed to round-trip " << S;
  }
}

TEST(StringUtil, IsDigits) {
  EXPECT_TRUE(isDigits("0123"));
  EXPECT_FALSE(isDigits(""));
  EXPECT_FALSE(isDigits("12a"));
  EXPECT_FALSE(isDigits("-1"));
}

TEST(ThreadPool, ChunkingCoversRangeOnce) {
  const int64_t N = 1000;
  support::ThreadPool Pool(4);
  // Chunks are disjoint, so distinct threads touch distinct indices.
  std::vector<int> Hits(static_cast<size_t>(N), 0);
  support::parallelChunks(&Pool, N,
                          [&](int64_t, int64_t Begin, int64_t End) {
                            for (int64_t I = Begin; I < End; ++I)
                              Hits[static_cast<size_t>(I)]++;
                          });
  for (int64_t I = 0; I < N; ++I)
    EXPECT_EQ(Hits[static_cast<size_t>(I)], 1) << "index " << I;
}

TEST(ThreadPool, ChunkDecompositionIsSizeOnly) {
  // The chunk count and size depend on N alone (never the thread count);
  // this is the root of the determinism contract.
  EXPECT_EQ(support::ThreadPool::numChunks(0), 0);
  EXPECT_EQ(support::ThreadPool::numChunks(1), 1);
  EXPECT_EQ(support::ThreadPool::chunkSize(1), 1);
  const int64_t N = 2048;
  int64_t CS = support::ThreadPool::chunkSize(N);
  int64_t Chunks = support::ThreadPool::numChunks(N);
  EXPECT_GE(Chunks * CS, N);
  EXPECT_LT((Chunks - 1) * CS, N);
}

TEST(ThreadPool, OrderedReduceBitIdenticalAcrossPools) {
  // A floating-point sum whose value depends on association order: any
  // pool (including none) must produce the exact same bits because the
  // chunk partials are combined in chunk-index order.
  const int64_t N = 12345;
  auto Map = [](int64_t Begin, int64_t End) {
    double S = 0;
    for (int64_t I = Begin; I < End; ++I)
      S += std::sqrt(static_cast<double>(I)) * 1e-3;
    return S;
  };
  auto Combine = [](double &Acc, double Part) { Acc += Part; };
  double Ref = support::reduceChunksOrdered<double>(nullptr, N, Map,
                                                    Combine);
  for (unsigned T : {1u, 2u, 3u, 8u}) {
    support::ThreadPool Pool(T);
    double Got =
        support::reduceChunksOrdered<double>(&Pool, N, Map, Combine);
    EXPECT_EQ(Ref, Got) << "thread count " << T;
  }
}

TEST(ThreadPool, NestedParallelRunsInline) {
  support::ThreadPool Pool(4);
  std::atomic<int64_t> Total{0};
  support::parallelChunks(&Pool, 256,
                          [&](int64_t, int64_t Begin, int64_t End) {
                            // Reentrant use from a worker must not
                            // deadlock; it degrades to inline execution.
                            support::parallelChunks(
                                &Pool, End - Begin,
                                [&](int64_t, int64_t B2, int64_t E2) {
                                  Total += E2 - B2;
                                });
                          });
  EXPECT_EQ(Total.load(), 256);
}

TEST(Serialize, Crc32KnownAnswer) {
  // The IEEE 802.3 check value; also pins byte order and the empty case.
  EXPECT_EQ(support::crc32(std::string("123456789")), 0xCBF43926u);
  EXPECT_EQ(support::crc32(std::string()), 0u);
  EXPECT_NE(support::crc32(std::string("a")),
            support::crc32(std::string("b")));
}

TEST(Serialize, ByteWriterReaderRoundTrip) {
  support::ByteWriter W;
  W.u8(0xab);
  W.u32(0xdeadbeef);
  W.u64(0x0123456789abcdefull);
  W.i64(-42);
  W.f64(-0.0);
  W.f64(std::numeric_limits<double>::quiet_NaN());
  W.str("hello");
  W.str("");

  support::ByteReader R(W.bytes());
  EXPECT_EQ(R.u8(), 0xab);
  EXPECT_EQ(R.u32(), 0xdeadbeefu);
  EXPECT_EQ(R.u64(), 0x0123456789abcdefull);
  EXPECT_EQ(R.i64(), -42);
  double NegZero = R.f64();
  EXPECT_EQ(NegZero, 0.0);
  EXPECT_TRUE(std::signbit(NegZero)); // IEEE bits round-trip exactly.
  EXPECT_TRUE(std::isnan(R.f64()));
  EXPECT_EQ(R.str(), "hello");
  EXPECT_EQ(R.str(), "");
  EXPECT_TRUE(R.ok());
  EXPECT_EQ(R.remaining(), 0u);
}

TEST(Serialize, ByteReaderLatchesOnTruncation) {
  support::ByteWriter W;
  W.u32(7);
  support::ByteReader R(W.bytes());
  EXPECT_EQ(R.u32(), 7u);
  EXPECT_EQ(R.u64(), 0u); // Past the end: zero value...
  EXPECT_FALSE(R.ok());   // ...and the failure latches...
  EXPECT_EQ(R.u8(), 0u);  // ...so every later read fails too.
  EXPECT_FALSE(R.ok());
  EXPECT_FALSE(R.skip(1));
}

TEST(Serialize, ByteReaderRejectsHugeStringLength) {
  // A corrupted length prefix must not read past the end.
  support::ByteWriter W;
  W.u64(~0ull);
  support::ByteReader R(W.bytes());
  EXPECT_EQ(R.str(), "");
  EXPECT_FALSE(R.ok());
}

TEST(FileIO, AtomicWriteReadRoundTrip) {
  std::string Path = ::testing::TempDir() + "f90y_fileio_test.bin";
  std::string Data("binary\0data\xff", 12);
  ASSERT_TRUE(support::atomicWriteFile(Path, Data));
  std::string Back;
  ASSERT_TRUE(support::readFile(Path, Back));
  EXPECT_EQ(Back, Data);
  // Overwrite in place: the old content is fully replaced.
  ASSERT_TRUE(support::atomicWriteFile(Path, "x"));
  ASSERT_TRUE(support::readFile(Path, Back));
  EXPECT_EQ(Back, "x");
  std::remove(Path.c_str());
}

TEST(FileIO, WriteFailureReportsErrorAndLeavesNoFile) {
  std::string Path =
      ::testing::TempDir() + "no_such_dir_f90y/x/y/out.bin";
  std::string Error;
  EXPECT_FALSE(support::atomicWriteFile(Path, "data", &Error));
  EXPECT_FALSE(Error.empty());
  std::string Back;
  EXPECT_FALSE(support::readFile(Path, Back));
}

TEST(FileIO, ConcurrentWritersToOnePathStayAtomic) {
  // Regression: the temporary name used to be Path + ".tmp." + pid, so
  // two threads in one process writing the same path shared a temporary
  // and could rename interleaved garbage into place. Now the name is
  // unique per call: under concurrent same-path writers the final file
  // must always be exactly one writer's complete payload.
  const std::string Path =
      ::testing::TempDir() + "f90y_fileio_concurrent.bin";
  constexpr int NumWriters = 8;
  constexpr int RoundsPerWriter = 25;
  std::atomic<int> Failures{0};
  std::vector<std::thread> Writers;
  for (int W = 0; W < NumWriters; ++W)
    Writers.emplace_back([&, W] {
      // Distinct sizes per writer: a mixed file would be a wrong size.
      const std::string Payload(100 + W, static_cast<char>('a' + W));
      for (int R = 0; R < RoundsPerWriter; ++R)
        if (!support::atomicWriteFile(Path, Payload))
          ++Failures;
    });
  for (std::thread &T : Writers)
    T.join();
  EXPECT_EQ(Failures.load(), 0);
  std::string Back;
  ASSERT_TRUE(support::readFile(Path, Back));
  ASSERT_GE(Back.size(), 100u);
  ASSERT_LT(Back.size(), 100u + NumWriters);
  const char Expect = 'a' + static_cast<char>(Back.size() - 100);
  for (char C : Back)
    EXPECT_EQ(C, Expect);
  std::remove(Path.c_str());
  // No temporary litter: every .tmp sibling was renamed or removed.
  for (const auto &E :
       std::filesystem::directory_iterator(::testing::TempDir()))
    EXPECT_NE(
        E.path().filename().string().rfind("f90y_fileio_concurrent.bin.tmp.",
                                           0),
        0u);
}

TEST(FileIO, ReadMissingFileFails) {
  std::string Back, Error;
  EXPECT_FALSE(support::readFile(
      ::testing::TempDir() + "f90y_never_written.bin", Back, &Error));
  EXPECT_FALSE(Error.empty());
}

TEST(ThreadPool, SingleThreadPoolWorks) {
  support::ThreadPool Pool(1);
  int64_t Sum = 0; // No synchronization needed: everything runs inline.
  support::parallelChunks(&Pool, 100,
                          [&](int64_t, int64_t Begin, int64_t End) {
                            for (int64_t I = Begin; I < End; ++I)
                              Sum += I;
                          });
  EXPECT_EQ(Sum, 99 * 100 / 2);
}

} // namespace
