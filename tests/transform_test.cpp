//===- tests/transform_test.cpp - NIR transformation unit tests -------------===//
//
// Part of the Fortran-90-Y reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests the target-independent optimization stage: communication
/// extraction (Figure 12 temporaries), aligned-section masking (Figure 10),
/// domain blocking (Figure 9), and — critically — semantic preservation:
/// the reference interpreter must compute identical stores before and
/// after optimization.
///
//===----------------------------------------------------------------------===//

#include "frontend/Lexer.h"
#include "frontend/Parser.h"
#include "interp/Interpreter.h"
#include "lower/Lowering.h"
#include "nir/Printer.h"
#include "transform/Transforms.h"

#include <gtest/gtest.h>

using namespace f90y;
using namespace f90y::frontend;
using namespace f90y::interp;
using namespace f90y::transform;
namespace N = f90y::nir;

namespace {

class TransformTest : public ::testing::Test {
protected:
  ast::ASTContext ACtx;
  N::NIRContext NCtx;
  DiagnosticEngine Diags;

  const N::ProgramImp *lowerSrc(const std::string &Src) {
    Lexer L(Src, Diags);
    Parser P(L.lexAll(), ACtx, Diags);
    auto Unit = P.parseProgram();
    if (!Unit)
      return nullptr;
    auto LP = lower::lowerProgram(*Unit, NCtx, Diags);
    return LP ? LP->Program : nullptr;
  }

  /// Runs both the raw and optimized programs and checks that every array
  /// named in \p Arrays has identical contents.
  void expectSemanticsPreserved(const std::string &Src,
                                const std::vector<std::string> &Arrays,
                                const TransformOptions &Opts = {}) {
    const N::ProgramImp *Raw = lowerSrc(Src);
    ASSERT_NE(Raw, nullptr) << Diags.str();
    const N::ProgramImp *Opt = optimize(Raw, NCtx, Diags, Opts);
    ASSERT_FALSE(Diags.hasErrors()) << Diags.str();

    Interpreter IRaw(Diags), IOpt(Diags);
    ASSERT_TRUE(IRaw.run(Raw)) << Diags.str();
    ASSERT_TRUE(IOpt.run(Opt)) << Diags.str();
    for (const std::string &Name : Arrays) {
      const ArrayStorage *A = IRaw.getArray(Name);
      const ArrayStorage *B = IOpt.getArray(Name);
      ASSERT_NE(A, nullptr) << Name;
      ASSERT_NE(B, nullptr) << Name;
      ASSERT_EQ(A->Data.size(), B->Data.size()) << Name;
      for (size_t I = 0; I < A->Data.size(); ++I)
        ASSERT_DOUBLE_EQ(A->Data[I].asReal(), B->Data[I].asReal())
            << Name << " element " << I;
    }
  }
};

//===--------------------------------------------------------------------===//
// Communication extraction (the Figure 12 temporaries)
//===--------------------------------------------------------------------===//

TEST_F(TransformTest, CShiftInExpressionIsHoisted) {
  const N::ProgramImp *Raw = lowerSrc("program p\n"
                                      "real v(64), z(64)\n"
                                      "z = 2.0*(v - cshift(v, -1, 1))\n"
                                      "end\n");
  ASSERT_NE(Raw, nullptr) << Diags.str();
  const N::Imp *Opt = extractComm(Raw, NCtx, Diags);
  std::string Out = N::printImp(Opt);
  // A tmp0 temporary receives the shift; the compute MOVE reads it.
  EXPECT_NE(Out.find("DECL('tmp0'"), std::string::npos) << Out;
  EXPECT_NE(Out.find("(True, (FCNCALL('cshift', [AVAR('v', everywhere), "
                     "SCALAR(integer_32,'-1'), SCALAR(integer_32,'1')]), "
                     "AVAR('tmp0', everywhere)))"),
            std::string::npos)
      << Out;
  EXPECT_NE(Out.find("BINARY(Sub, AVAR('v', everywhere), AVAR('tmp0', "
                     "everywhere))"),
            std::string::npos)
      << Out;
}

TEST_F(TransformTest, BareCShiftMoveStaysCanonical) {
  const N::ProgramImp *Raw = lowerSrc("program p\n"
                                      "real v(64), w(64)\n"
                                      "w = cshift(v, 1, 1)\n"
                                      "end\n");
  ASSERT_NE(Raw, nullptr) << Diags.str();
  const N::Imp *Opt = extractComm(Raw, NCtx, Diags);
  std::string Out = N::printImp(Opt);
  // No temporaries: the MOVE is already a canonical communication.
  EXPECT_EQ(Out.find("tmp0"), std::string::npos) << Out;
}

TEST_F(TransformTest, NestedCShiftMakesTwoTemps) {
  const N::ProgramImp *Raw = lowerSrc("program p\n"
                                      "real v(64), z(64)\n"
                                      "z = 1.0 + cshift(cshift(v,1,1),1,1)\n"
                                      "end\n");
  ASSERT_NE(Raw, nullptr) << Diags.str();
  const N::Imp *Opt = extractComm(Raw, NCtx, Diags);
  std::string Out = N::printImp(Opt);
  EXPECT_NE(Out.find("DECL('tmp0'"), std::string::npos) << Out;
  EXPECT_NE(Out.find("DECL('tmp1'"), std::string::npos) << Out;
}

TEST_F(TransformTest, ReductionInsideFieldExpressionIsHoisted) {
  const N::ProgramImp *Raw = lowerSrc("program p\n"
                                      "real a(32), b(32)\n"
                                      "b = a / sum(a)\n"
                                      "end\n");
  ASSERT_NE(Raw, nullptr) << Diags.str();
  const N::Imp *Opt = extractComm(Raw, NCtx, Diags);
  std::string Out = N::printImp(Opt);
  EXPECT_NE(Out.find("(True, (FCNCALL('sum', [AVAR('a', everywhere)]), "
                     "SVAR 'tmp0'))"),
            std::string::npos)
      << Out;
  EXPECT_NE(Out.find("BINARY(Div, AVAR('a', everywhere), SVAR 'tmp0')"),
            std::string::npos)
      << Out;
}

TEST_F(TransformTest, CommOfComputedExpressionHoistsComputeFirst) {
  const N::ProgramImp *Raw = lowerSrc("program p\n"
                                      "real u(16), v(16), z(16)\n"
                                      "z = cshift(u*v, 1, 1)\n"
                                      "end\n");
  ASSERT_NE(Raw, nullptr) << Diags.str();
  const N::Imp *Opt = extractComm(Raw, NCtx, Diags);
  std::string Out = N::printImp(Opt);
  // tmp0 = u*v (compute), then z = cshift(tmp0) (comm, canonical at top).
  EXPECT_NE(Out.find("(True, (BINARY(Mul, AVAR('u', everywhere), AVAR('v', "
                     "everywhere)), AVAR('tmp0', everywhere)))"),
            std::string::npos)
      << Out;
  EXPECT_NE(Out.find("FCNCALL('cshift', [AVAR('tmp0', everywhere)"),
            std::string::npos)
      << Out;
}

//===--------------------------------------------------------------------===//
// Section masking (Figure 10)
//===--------------------------------------------------------------------===//

TEST_F(TransformTest, AlignedStridedSectionsBecomeMaskedEverywhere) {
  const N::ProgramImp *Raw = lowerSrc("program p\n"
                                      "integer a(32,32), b(32,32)\n"
                                      "b(1:32:2,:) = a(1:32:2,:)\n"
                                      "end\n");
  ASSERT_NE(Raw, nullptr) << Diags.str();
  const N::Imp *Opt = maskSections(Raw, NCtx, Diags);
  std::string Out = N::printImp(Opt);
  EXPECT_EQ(Out.find("section["), std::string::npos) << Out;
  // The Figure 10 mask: mod(coord - 1, 2) == 0.
  EXPECT_NE(Out.find("BINARY(Equals, BINARY(Mod, BINARY(Sub, "
                     "local_under(domain 'alpha',1), "
                     "SCALAR(integer_32,'1')), SCALAR(integer_32,'2')), "
                     "SCALAR(integer_32,'0'))"),
            std::string::npos)
      << Out;
  EXPECT_NE(Out.find("AVAR('b', everywhere)"), std::string::npos) << Out;
}

TEST_F(TransformTest, MisalignedSectionsAreLeftAsCommunication) {
  const N::ProgramImp *Raw = lowerSrc("program p\n"
                                      "integer l(128)\n"
                                      "l(32:64) = l(96:128)\n"
                                      "end\n");
  ASSERT_NE(Raw, nullptr) << Diags.str();
  const N::Imp *Opt = maskSections(Raw, NCtx, Diags);
  std::string Out = N::printImp(Opt);
  EXPECT_NE(Out.find("section[96:128]"), std::string::npos) << Out;
  EXPECT_NE(Out.find("section[32:64]"), std::string::npos) << Out;
}

TEST_F(TransformTest, ContiguousAlignedSectionGetsRangeMask) {
  const N::ProgramImp *Raw = lowerSrc("program p\n"
                                      "integer l(128)\n"
                                      "l(32:64) = 2*l(32:64)\n"
                                      "end\n");
  ASSERT_NE(Raw, nullptr) << Diags.str();
  const N::Imp *Opt = maskSections(Raw, NCtx, Diags);
  std::string Out = N::printImp(Opt);
  EXPECT_EQ(Out.find("section["), std::string::npos) << Out;
  EXPECT_NE(Out.find("BINARY(GreaterEq, local_under(domain 'alpha',1), "
                     "SCALAR(integer_32,'32'))"),
            std::string::npos)
      << Out;
  EXPECT_NE(Out.find("BINARY(LessEq, local_under(domain 'alpha',1), "
                     "SCALAR(integer_32,'64'))"),
            std::string::npos)
      << Out;
}

//===--------------------------------------------------------------------===//
// Domain blocking (Figure 9 / Figure 10 blocking)
//===--------------------------------------------------------------------===//

TEST_F(TransformTest, Figure9LikeShapeMovesFuse) {
  // Figure 9: A-move (alpha), serial diagonal loop (beta), B-move (alpha).
  // The two alpha MOVEs must fuse into one computation phase.
  const N::ProgramImp *Raw =
      lowerSrc("program p\n"
               "integer, array(64,64) :: a, b\n"
               "integer, dimension(64) :: c\n"
               "integer i, j\n"
               "forall (i=1:64, j=1:64) a(i,j) = b(i,j) + j\n"
               "do i=1,64\n"
               "  c(i) = a(i,i)\n"
               "end do\n"
               "b = a\n"
               "end\n");
  ASSERT_NE(Raw, nullptr) << Diags.str();
  PhaseStats Before = countPhases(Raw);
  // a=... and b=a are PEAC computations; the diagonal extraction c(i) is a
  // host element move.
  EXPECT_EQ(Before.ComputationPhases, 2u);
  EXPECT_EQ(Before.HostScalarPhases, 1u);

  const N::ProgramImp *Opt = optimize(Raw, NCtx, Diags);
  ASSERT_FALSE(Diags.hasErrors()) << Diags.str();
  PhaseStats After = countPhases(Opt);
  // The two alpha-domain MOVEs fused into one computation block.
  EXPECT_EQ(After.ComputationPhases, 1u) << N::printImp(Opt);
}

TEST_F(TransformTest, Figure9FusionRespectsDependencies) {
  // b = a may NOT move above the loop if the loop writes a.
  const N::ProgramImp *Raw =
      lowerSrc("program p\n"
               "integer, array(8,8) :: a, b\n"
               "integer i\n"
               "a = 1\n"
               "do i=1,8\n"
               "  a(i,i) = 0\n"
               "end do\n"
               "b = a\n"
               "end\n");
  ASSERT_NE(Raw, nullptr) << Diags.str();
  const N::ProgramImp *Opt = optimize(Raw, NCtx, Diags);
  PhaseStats After = countPhases(Opt);
  // No fusion possible: a=1 and b=a stay separated by the diagonal writes
  // (two distinct computation phases; fusion would have made one).
  EXPECT_EQ(After.ComputationPhases, 2u) << N::printImp(Opt);
  expectSemanticsPreserved("program p\n"
                           "integer, array(8,8) :: a, b\n"
                           "integer i\n"
                           "a = 1\n"
                           "do i=1,8\n"
                           "  a(i,i) = 0\n"
                           "end do\n"
                           "b = a\n"
                           "end\n",
                           {"a", "b"});
}

TEST_F(TransformTest, Figure10MaskedMovesBlockTogether) {
  // Figure 10: after masking, the disjoint odd/even assignments and a=n
  // block into one MOVE over S; c=n+1 (1-d) stays separate.
  const N::ProgramImp *Raw =
      lowerSrc("program p\n"
               "integer, array(32,32) :: a, b\n"
               "integer, dimension(32) :: c\n"
               "integer n\n"
               "n = 3\n"
               "a = n\n"
               "b(1:32:2,:) = a(1:32:2,:)\n"
               "c = n+1\n"
               "b(2:32:2,:) = 5*a(2:32:2,:)\n"
               "end\n");
  ASSERT_NE(Raw, nullptr) << Diags.str();
  const N::ProgramImp *Opt = optimize(Raw, NCtx, Diags);
  ASSERT_FALSE(Diags.hasErrors()) << Diags.str();
  PhaseStats After = countPhases(Opt);
  // Paper: "This fragment could be compiled into two PEAC routines."
  EXPECT_EQ(After.ComputationPhases, 2u) << N::printImp(Opt);
  EXPECT_EQ(After.CommunicationPhases, 0u) << N::printImp(Opt);
}

TEST_F(TransformTest, CommunicationPunctuatesBlocks) {
  // compute / comm / compute cannot fuse across the cshift.
  const N::ProgramImp *Raw = lowerSrc("program p\n"
                                      "real u(64), v(64), w(64)\n"
                                      "u = 1.0\n"
                                      "v = cshift(u, 1, 1)\n"
                                      "w = u + v\n"
                                      "end\n");
  ASSERT_NE(Raw, nullptr) << Diags.str();
  const N::ProgramImp *Opt = optimize(Raw, NCtx, Diags);
  PhaseStats After = countPhases(Opt);
  EXPECT_EQ(After.CommunicationPhases, 1u);
  EXPECT_EQ(After.ComputationPhases, 2u);
}

//===--------------------------------------------------------------------===//
// countPhases edge cases (the per-pass observability gauges feed off it,
// so the degenerate shapes must not crash or miscount)
//===--------------------------------------------------------------------===//

TEST_F(TransformTest, CountPhasesNullRootIsAllZero) {
  PhaseStats S = countPhases(nullptr);
  EXPECT_EQ(S.ComputationPhases, 0u);
  EXPECT_EQ(S.CommunicationPhases, 0u);
  EXPECT_EQ(S.HostScalarPhases, 0u);
  EXPECT_EQ(S.MoveClauses, 0u);
}

TEST_F(TransformTest, CountPhasesEmptyProgram) {
  const N::ProgramImp *Raw = lowerSrc("program p\nend\n");
  ASSERT_NE(Raw, nullptr) << Diags.str();
  PhaseStats S = countPhases(Raw);
  EXPECT_EQ(S.ComputationPhases, 0u);
  EXPECT_EQ(S.CommunicationPhases, 0u);
  EXPECT_EQ(S.MoveClauses, 0u);
}

TEST_F(TransformTest, CountPhasesHostScalarOnlyProgram) {
  // No arrays anywhere: nothing may classify as a PEAC computation or a
  // communication phase.
  const N::ProgramImp *Raw = lowerSrc("program p\n"
                                      "integer n, m\n"
                                      "n = 3\n"
                                      "m = n + 1\n"
                                      "end\n");
  ASSERT_NE(Raw, nullptr) << Diags.str();
  const N::ProgramImp *Opt = optimize(Raw, NCtx, Diags);
  ASSERT_FALSE(Diags.hasErrors()) << Diags.str();
  for (const N::Imp *P : {static_cast<const N::Imp *>(Raw),
                          static_cast<const N::Imp *>(Opt)}) {
    PhaseStats S = countPhases(P);
    EXPECT_EQ(S.ComputationPhases, 0u);
    EXPECT_EQ(S.CommunicationPhases, 0u);
    EXPECT_GE(S.HostScalarPhases, 1u);
  }
}

TEST_F(TransformTest, CountPhasesSingleFusedMove) {
  // Two same-domain assignments: with elementwise fusion off, blocking
  // fuses them into ONE MOVE carrying BOTH clauses; with fusion on, the
  // single-use temporary 'a' disappears into 'b' entirely and only one
  // clause remains.
  const N::ProgramImp *Raw = lowerSrc("program p\n"
                                      "integer, array(16,16) :: a, b\n"
                                      "a = 1\n"
                                      "b = a\n"
                                      "end\n");
  ASSERT_NE(Raw, nullptr) << Diags.str();
  PhaseStats Before = countPhases(Raw);
  EXPECT_EQ(Before.ComputationPhases, 2u);
  EXPECT_EQ(Before.MoveClauses, 2u);

  TransformOptions NoFuse;
  NoFuse.Fusion = false;
  const N::ProgramImp *Blocked = optimize(Raw, NCtx, Diags, NoFuse);
  ASSERT_FALSE(Diags.hasErrors()) << Diags.str();
  PhaseStats After = countPhases(Blocked);
  EXPECT_EQ(After.ComputationPhases, 1u) << N::printImp(Blocked);
  EXPECT_EQ(After.MoveClauses, 2u) << N::printImp(Blocked);
  EXPECT_EQ(After.CommunicationPhases, 0u);

  const N::ProgramImp *Fused = optimize(Raw, NCtx, Diags);
  ASSERT_FALSE(Diags.hasErrors()) << Diags.str();
  PhaseStats FusedStats = countPhases(Fused);
  EXPECT_EQ(FusedStats.ComputationPhases, 1u) << N::printImp(Fused);
  EXPECT_EQ(FusedStats.MoveClauses, 1u) << N::printImp(Fused);
}

//===--------------------------------------------------------------------===//
// Semantic preservation (differential against the interpreter)
//===--------------------------------------------------------------------===//

TEST_F(TransformTest, PreservesFigure10Semantics) {
  expectSemanticsPreserved("program p\n"
                           "integer, array(32,32) :: a, b\n"
                           "integer, dimension(32) :: c\n"
                           "integer n\n"
                           "n = 3\n"
                           "a = n\n"
                           "b(1:32:2,:) = a(1:32:2,:)\n"
                           "c = n+1\n"
                           "b(2:32:2,:) = 5*a(2:32:2,:)\n"
                           "end\n",
                           {"a", "b", "c"});
}

TEST_F(TransformTest, PreservesShiftExpressionSemantics) {
  expectSemanticsPreserved("program p\n"
                           "real v(32), z(32)\n"
                           "integer i\n"
                           "do i=1,32\n"
                           "  v(i) = i*i\n"
                           "end do\n"
                           "z = 0.5*(v - cshift(v,-1,1)) + cshift(v,1,1)\n"
                           "end\n",
                           {"v", "z"});
}

TEST_F(TransformTest, PreservesMisalignedSectionSemantics) {
  expectSemanticsPreserved("program p\n"
                           "integer l(128), i\n"
                           "do i=1,128\n"
                           "  l(i) = i\n"
                           "end do\n"
                           "l(32:64) = l(96:128)\n"
                           "end\n",
                           {"l"});
}

TEST_F(TransformTest, PreservesWhereSemantics) {
  expectSemanticsPreserved("program p\n"
                           "integer a(16,16), b(16,16)\n"
                           "integer i, j\n"
                           "forall (i=1:16, j=1:16) a(i,j) = i - j\n"
                           "where (a > 0)\n"
                           "  b = a*a\n"
                           "elsewhere\n"
                           "  b = -a\n"
                           "end where\n"
                           "end\n",
                           {"a", "b"});
}

TEST_F(TransformTest, PreservesReductionNormalization) {
  expectSemanticsPreserved("program p\n"
                           "real a(16), b(16)\n"
                           "integer i\n"
                           "do i=1,16\n"
                           "  a(i) = i\n"
                           "end do\n"
                           "b = a / sum(a)\n"
                           "end\n",
                           {"a", "b"});
}

TEST_F(TransformTest, PreservesTimeSteppedStencil) {
  // A miniature SWE-like pattern: shifts + local computation in a loop.
  // Under fusion the single-use 'unew' is folded into 'u' (and its
  // storage eliminated), so only 'u' is observable; the fusion-off run
  // still checks both fields.
  const std::string Src =
      "program p\n"
      "real u(16,16), unew(16,16)\n"
      "integer i, j, t\n"
      "forall (i=1:16, j=1:16) u(i,j) = i + 2*j\n"
      "do t=1,4\n"
      "  unew = 0.25*(cshift(u,1,1) + cshift(u,-1,1) &\n"
      "             + cshift(u,1,2) + cshift(u,-1,2))\n"
      "  u = unew\n"
      "end do\n"
      "end\n";
  expectSemanticsPreserved(Src, {"u"});
  TransformOptions NoFuse;
  NoFuse.Fusion = false;
  expectSemanticsPreserved(Src, {"u", "unew"}, NoFuse);
}

TEST_F(TransformTest, PreservesSemanticsWithEachPassAlone) {
  const std::string Src = "program p\n"
                          "integer a(32,32), b(32,32)\n"
                          "integer, dimension(32) :: c\n"
                          "integer n\n"
                          "n = 2\n"
                          "a = n\n"
                          "b(1:32:2,:) = a(1:32:2,:)\n"
                          "c = n+1\n"
                          "b(2:32:2,:) = 5*a(2:32:2,:)\n"
                          "b = b + cshift(a, 1, 1)\n"
                          "end\n";
  {
    SCOPED_TRACE("extract only");
    TransformOptions O;
    O.MaskSections = O.Blocking = false;
    expectSemanticsPreserved(Src, {"a", "b", "c"}, O);
  }
  {
    SCOPED_TRACE("mask only");
    TransformOptions O;
    O.ExtractComm = O.Blocking = false;
    expectSemanticsPreserved(Src, {"a", "b", "c"}, O);
  }
  {
    SCOPED_TRACE("blocking only");
    TransformOptions O;
    O.ExtractComm = O.MaskSections = false;
    expectSemanticsPreserved(Src, {"a", "b", "c"}, O);
  }
}

} // namespace
