//===- tools/f90y-serve.cpp - batch compile-and-run service ------------------===//
//
// Part of the Fortran-90-Y reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// f90y-serve: run a batch of compile-and-run jobs concurrently over one
/// process-shared artifact cache.
///
///   f90y-serve -jobs=FILE [options]
///
///   -jobs=FILE       line-delimited JSON job manifest (one job object per
///                    line; '#' comments and blank lines skipped; relative
///                    "source_path" entries resolve against the manifest's
///                    directory)
///   -workers=N       concurrent job workers (default: all hardware
///                    threads; results are byte-identical at any N)
///   -out=DIR         write per-job artifacts (<id>.out, <id>.stats.json
///                    on success, <id>.err on failure) and the batch
///                    results.jsonl into DIR (created if missing)
///   -queue-limit=N   admission control: jobs past the first N are shed
///                    with "rejected" records (default: unlimited)
///   -no-cache        disable the shared artifact cache (every job
///                    compiles privately; the cold baseline)
///   -stats-json=FILE write the batch report (job/cache/queue counts,
///                    wall-clock throughput) to FILE as JSON
///   -metrics=FILE    write the serve.* metrics registry to FILE as JSON
///   -trace=FILE      record one wall span per job (plus the batch span)
///                    and write Chrome trace-event JSON to FILE. Spans are
///                    coordinator-side summary records emitted in manifest
///                    order with normalized timestamps, so the file is
///                    byte-identical at any -workers=N (wall timings live
///                    in -stats-json)
///
/// The per-job results (results.jsonl payload) stream to stdout; the
/// batch summary prints to stderr.
///
/// Exit codes: 0 every job ok, 1 infrastructure/IO error, 2 bad usage,
/// 4 partial failure (the batch ran, but at least one job did not end ok).
///
//===----------------------------------------------------------------------===//

#include "observe/Metrics.h"
#include "observe/Trace.h"
#include "serve/Scheduler.h"
#include "support/FileIO.h"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>

using namespace f90y;

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: f90y-serve -jobs=FILE [options]\n"
               "  -workers=N   -out=DIR   -queue-limit=N   -no-cache\n"
               "  -stats-json=FILE   -metrics=FILE   -trace=FILE\n");
}

bool parseUint64(const std::string &Flag, const std::string &Text,
                 uint64_t &Out) {
  if (Text.empty() || Text[0] == '-' || Text[0] == '+') {
    std::fprintf(stderr, "f90y-serve: invalid value '%s' for %s=N\n",
                 Text.c_str(), Flag.c_str());
    return false;
  }
  errno = 0;
  char *End = nullptr;
  unsigned long long V = std::strtoull(Text.c_str(), &End, 10);
  if (End == Text.c_str() || *End != '\0' || errno == ERANGE) {
    std::fprintf(stderr, "f90y-serve: invalid value '%s' for %s=N\n",
                 Text.c_str(), Flag.c_str());
    return false;
  }
  Out = V;
  return true;
}

bool parsePositiveCount(const std::string &Flag, const std::string &Text,
                        unsigned &Out) {
  uint64_t V = 0;
  if (!parseUint64(Flag, Text, V))
    return false;
  if (V == 0 || V > 0xffffffffull) {
    std::fprintf(stderr,
                 "f90y-serve: %s must be a positive count, got '%s'\n",
                 Flag.c_str(), Text.c_str());
    return false;
  }
  Out = static_cast<unsigned>(V);
  return true;
}

} // namespace

int main(int argc, char **argv) {
  std::string JobsPath, OutDir, StatsJsonPath, MetricsPath, TracePath;
  serve::ServeOptions Opts;
  bool UseCache = true;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg.rfind("-jobs=", 0) == 0) {
      JobsPath = Arg.substr(6);
      if (JobsPath.empty()) {
        std::fprintf(stderr, "f90y-serve: -jobs needs a file name\n");
        return 2;
      }
    } else if (Arg.rfind("-workers=", 0) == 0) {
      if (!parsePositiveCount("-workers", Arg.substr(9), Opts.Workers))
        return 2;
    } else if (Arg.rfind("-out=", 0) == 0) {
      OutDir = Arg.substr(5);
      if (OutDir.empty()) {
        std::fprintf(stderr, "f90y-serve: -out needs a directory name\n");
        return 2;
      }
    } else if (Arg.rfind("-queue-limit=", 0) == 0) {
      uint64_t Limit = 0;
      if (!parseUint64("-queue-limit", Arg.substr(13), Limit))
        return 2;
      if (Limit == 0) {
        std::fprintf(stderr,
                     "f90y-serve: -queue-limit must be a positive count, "
                     "got '%s'\n",
                     Arg.substr(13).c_str());
        return 2;
      }
      Opts.QueueLimit = static_cast<size_t>(Limit);
    } else if (Arg == "-no-cache") {
      UseCache = false;
    } else if (Arg.rfind("-stats-json=", 0) == 0) {
      StatsJsonPath = Arg.substr(12);
      if (StatsJsonPath.empty()) {
        std::fprintf(stderr, "f90y-serve: -stats-json needs a file name\n");
        return 2;
      }
    } else if (Arg.rfind("-metrics=", 0) == 0) {
      MetricsPath = Arg.substr(9);
      if (MetricsPath.empty()) {
        std::fprintf(stderr, "f90y-serve: -metrics needs a file name\n");
        return 2;
      }
    } else if (Arg.rfind("-trace=", 0) == 0) {
      TracePath = Arg.substr(7);
      if (TracePath.empty()) {
        std::fprintf(stderr, "f90y-serve: -trace needs a file name\n");
        return 2;
      }
    } else {
      std::fprintf(stderr, "f90y-serve: unknown option '%s'\n", Arg.c_str());
      usage();
      return 2;
    }
  }
  if (JobsPath.empty()) {
    usage();
    return 2;
  }

  std::string ManifestText;
  std::string Error;
  if (!support::readFile(JobsPath, ManifestText, &Error)) {
    std::fprintf(stderr, "f90y-serve: %s\n", Error.c_str());
    return 1;
  }
  std::string BaseDir =
      std::filesystem::path(JobsPath).parent_path().string();
  std::vector<serve::JobSpec> Jobs =
      serve::parseManifest(ManifestText, BaseDir);
  if (Jobs.empty()) {
    std::fprintf(stderr, "f90y-serve: manifest '%s' contains no jobs\n",
                 JobsPath.c_str());
    return 2;
  }

  if (!OutDir.empty()) {
    std::error_code EC;
    std::filesystem::create_directories(OutDir, EC);
    if (EC) {
      std::fprintf(stderr, "f90y-serve: cannot create '%s': %s\n",
                   OutDir.c_str(), EC.message().c_str());
      return 1;
    }
  }

  serve::ArtifactCache Cache;
  observe::MetricsRegistry Metrics;
  observe::TraceRecorder Trace;
  Opts.OutDir = OutDir;
  Opts.Cache = UseCache ? &Cache : nullptr;
  Opts.Metrics = MetricsPath.empty() ? nullptr : &Metrics;
  Opts.Trace = TracePath.empty() ? nullptr : &Trace;

  const auto Start = std::chrono::steady_clock::now();
  serve::BatchResult B = serve::runBatch(std::move(Jobs), Opts);
  const double WallMs = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - Start)
                            .count();

  std::fputs(B.resultsJsonl().c_str(), stdout);
  std::fprintf(stderr,
               "f90y-serve: %zu jobs in %.1f ms: ok %llu, invalid %llu, "
               "compile-error %llu, runtime-error %llu, timeout %llu, "
               "rejected %llu (retries %llu; cache %llu hits / %llu "
               "misses)\n",
               B.Records.size(), WallMs,
               static_cast<unsigned long long>(B.Ok),
               static_cast<unsigned long long>(B.Invalid),
               static_cast<unsigned long long>(B.CompileErrors),
               static_cast<unsigned long long>(B.RuntimeErrors),
               static_cast<unsigned long long>(B.Timeouts),
               static_cast<unsigned long long>(B.Rejected),
               static_cast<unsigned long long>(B.Retried),
               static_cast<unsigned long long>(B.CacheHits),
               static_cast<unsigned long long>(B.CacheMisses));
  for (const serve::JobRecord &R : B.Records)
    if (!R.IoError.empty())
      std::fprintf(stderr, "f90y-serve: job '%s': %s\n", R.Id.c_str(),
                   R.IoError.c_str());

  bool IoOk = B.IoFailures == 0;
  if (!StatsJsonPath.empty() &&
      !support::atomicWriteFile(StatsJsonPath, B.statsJson(WallMs),
                                &Error)) {
    std::fprintf(stderr, "f90y-serve: cannot write '%s': %s\n",
                 StatsJsonPath.c_str(), Error.c_str());
    IoOk = false;
  }
  if (!MetricsPath.empty() &&
      !support::atomicWriteFile(MetricsPath, Metrics.exportJson(), &Error)) {
    std::fprintf(stderr, "f90y-serve: cannot write '%s': %s\n",
                 MetricsPath.c_str(), Error.c_str());
    IoOk = false;
  }
  if (!TracePath.empty() &&
      !support::atomicWriteFile(TracePath,
                                Trace.exportJson(/*NormalizeWall=*/true),
                                &Error)) {
    std::fprintf(stderr, "f90y-serve: cannot write '%s': %s\n",
                 TracePath.c_str(), Error.c_str());
    IoOk = false;
  }

  if (!IoOk)
    return 1;
  return B.allOk() ? 0 : 4;
}
