//===- tools/f90y-trace.cpp - trace summarizer -------------------------------===//
//
// Part of the Fortran-90-Y reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// f90y-trace: summarize a Chrome trace-event JSON file produced by
/// `f90yc -trace=FILE`, and/or a metrics registry export produced by
/// `f90yc -metrics=FILE`.
///
///   f90y-trace [-top=N] [-metrics=metrics.json] [trace.json]
///
/// For a trace, prints per clock domain the per-phase breakdown (event
/// name, span count, total duration, share of the domain total) and the
/// top-N longest individual spans. The cycle-domain total equals the
/// run's cycle-ledger total (`f90yc -stats`): cycle spans tile the
/// ledger, with untraced front-end time attributed to synthetic "host"
/// spans.
///
/// For a metrics export, prints every metric grouped by its dotted
/// prefix, then a one-line digest of each optimization pass that
/// reported gauges (layout.*, fuse.*) so CI logs surface what the
/// transforms actually did to the program.
///
//===----------------------------------------------------------------------===//

#include "observe/Json.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

using namespace f90y::observe;

namespace {

struct Span {
  std::string Name;
  std::string Cat;
  double Ts = 0;
  double Dur = 0;
};

struct Group {
  uint64_t Count = 0;
  double Total = 0;
};

void summarizeDomain(const char *Title, const char *Unit,
                     const std::vector<Span> &Spans, uint64_t Instants,
                     unsigned TopN) {
  double DomainTotal = 0;
  std::map<std::string, Group> Groups;
  for (const Span &S : Spans) {
    Group &G = Groups[S.Name];
    G.Count += 1;
    G.Total += S.Dur;
    DomainTotal += S.Dur;
  }

  std::printf("== %s ==\n", Title);
  if (Spans.empty()) {
    std::printf("  (no spans)\n\n");
    return;
  }

  std::vector<std::pair<std::string, Group>> Rows(Groups.begin(),
                                                  Groups.end());
  std::sort(Rows.begin(), Rows.end(), [](const auto &A, const auto &B) {
    if (A.second.Total != B.second.Total)
      return A.second.Total > B.second.Total;
    return A.first < B.first;
  });
  std::printf("  %-24s %8s %16s %7s\n", "phase", "count", Unit, "share");
  for (const auto &[Name, G] : Rows)
    std::printf("  %-24s %8llu %16.1f %6.1f%%\n", Name.c_str(),
                static_cast<unsigned long long>(G.Count), G.Total,
                DomainTotal > 0 ? 100.0 * G.Total / DomainTotal : 0.0);
  std::printf("  %-24s %8llu %16.1f\n", "total",
              static_cast<unsigned long long>(Spans.size()), DomainTotal);
  if (Instants)
    std::printf("  (+ %llu instant events)\n",
                static_cast<unsigned long long>(Instants));

  std::vector<Span> Top = Spans;
  std::stable_sort(Top.begin(), Top.end(),
                   [](const Span &A, const Span &B) { return A.Dur > B.Dur; });
  if (Top.size() > TopN)
    Top.resize(TopN);
  std::printf("  top %zu spans:\n", Top.size());
  for (const Span &S : Top)
    std::printf("    %-22s %-8s ts=%-14.1f dur=%.1f\n", S.Name.c_str(),
                S.Cat.c_str(), S.Ts, S.Dur);
  std::printf("\n");
}

/// Summarizes a `f90yc -metrics=FILE` export: every metric grouped by
/// its dotted prefix, then the optimization-pass digest. Returns the
/// process exit code.
int summarizeMetrics(const std::string &Path) {
  std::ifstream In(Path);
  if (!In) {
    std::fprintf(stderr, "f90y-trace: cannot open '%s'\n", Path.c_str());
    return 1;
  }
  std::ostringstream Buf;
  Buf << In.rdbuf();

  json::Value Root;
  std::string Error;
  if (!json::parse(Buf.str(), Root, Error)) {
    std::fprintf(stderr,
                 "f90y-trace: %s: malformed metrics JSON (%s)\n",
                 Path.c_str(), Error.c_str());
    return 2;
  }
  const json::Value *Metrics = Root.get("metrics");
  if (!Metrics || !Metrics->isObject()) {
    std::fprintf(stderr,
                 "f90y-trace: %s: no metrics object (not a f90yc "
                 "-metrics export?)\n",
                 Path.c_str());
    return 2;
  }

  std::printf("== metrics ==\n");
  std::string Prefix;
  std::map<std::string, double> Values;
  for (const auto &[Name, M] : Metrics->Obj) {
    if (!M.isObject())
      continue;
    std::string Group = Name.substr(0, Name.find('.'));
    if (Group != Prefix) {
      Prefix = Group;
      std::printf("  [%s]\n", Group.c_str());
    }
    std::string Type = M.strOr("type", "?");
    if (const json::Value *V = M.get("value")) {
      Values[Name] = V->Num;
      std::printf("    %-34s %-10s %16.1f\n", Name.c_str(), Type.c_str(),
                  V->Num);
    } else {
      // Histograms carry count/sum instead of one value.
      std::printf("    %-34s %-10s count=%.0f sum=%.1f\n", Name.c_str(),
                  Type.c_str(), M.numOr("count", 0), M.numOr("sum", 0));
    }
  }

  // Pass digests: what the optimizing transforms did, one line each,
  // only for passes that actually reported.
  if (Values.count("layout.fields_realigned"))
    std::printf("\n  layout: %.0f fields realigned, %.0f exchanges "
                "localized, ~%.0f comm cycles saved/run\n",
                Values["layout.fields_realigned"],
                Values["layout.comm_moves_localized"],
                Values["layout.comm_cycles_saved"]);
  if (Values.count("fuse.temps_eliminated"))
    std::printf("  fuse: %.0f temporaries eliminated, %.0f moves fused, "
                "%.0f bytes saved/step\n",
                Values["fuse.temps_eliminated"], Values["fuse.moves_fused"],
                Values["fuse.bytes_saved"]);
  std::printf("\n");
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  std::string Path, MetricsPath;
  unsigned TopN = 5;
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg.rfind("-metrics=", 0) == 0) {
      MetricsPath = Arg.substr(9);
      if (MetricsPath.empty()) {
        std::fprintf(stderr, "f90y-trace: -metrics needs a file name\n");
        return 2;
      }
    } else if (Arg.rfind("-top=", 0) == 0) {
      char *End = nullptr;
      unsigned long V = std::strtoul(Arg.c_str() + 5, &End, 10);
      if (End == Arg.c_str() + 5 || *End != '\0' || V == 0) {
        std::fprintf(stderr, "f90y-trace: invalid value for -top=N\n");
        return 2;
      }
      TopN = static_cast<unsigned>(V);
    } else if (!Arg.empty() && Arg[0] == '-') {
      std::fprintf(stderr, "usage: f90y-trace [-top=N] "
                           "[-metrics=metrics.json] [trace.json]\n");
      return 2;
    } else if (Path.empty()) {
      Path = Arg;
    } else {
      std::fprintf(stderr, "f90y-trace: multiple input files\n");
      return 2;
    }
  }
  if (Path.empty() && MetricsPath.empty()) {
    std::fprintf(stderr, "usage: f90y-trace [-top=N] "
                         "[-metrics=metrics.json] [trace.json]\n");
    return 2;
  }
  if (!MetricsPath.empty()) {
    int RC = summarizeMetrics(MetricsPath);
    if (RC != 0 || Path.empty())
      return RC;
  }

  std::ifstream In(Path);
  if (!In) {
    std::fprintf(stderr, "f90y-trace: cannot open '%s'\n", Path.c_str());
    return 1;
  }
  std::ostringstream Buf;
  Buf << In.rdbuf();

  // A trace that does not parse is a malformed input (truncated mid-write,
  // bit-rotted, or not a trace at all): report one line and exit 2, the
  // same class as bad usage, so scripts can tell "bad input file" from
  // "summarizer failed" without scraping stderr.
  json::Value Root;
  std::string Error;
  if (!json::parse(Buf.str(), Root, Error)) {
    std::fprintf(stderr,
                 "f90y-trace: %s: malformed trace JSON (%s); was the "
                 "file truncated?\n",
                 Path.c_str(), Error.c_str());
    return 2;
  }
  const json::Value *Events = Root.get("traceEvents");
  if (!Events || !Events->isArray()) {
    std::fprintf(stderr,
                 "f90y-trace: %s: no traceEvents array (not a Chrome "
                 "trace?)\n",
                 Path.c_str());
    return 2;
  }

  std::vector<Span> Wall, Cycles;
  uint64_t WallInstants = 0, CycleInstants = 0;
  for (const json::Value &E : Events->Arr) {
    if (!E.isObject())
      continue;
    std::string Ph = E.strOr("ph", "");
    if (Ph != "X" && Ph != "i")
      continue;
    bool IsWall = E.numOr("pid", 0) == 1;
    if (Ph == "i") {
      (IsWall ? WallInstants : CycleInstants) += 1;
      continue;
    }
    Span S;
    S.Name = E.strOr("name", "?");
    S.Cat = E.strOr("cat", "");
    S.Ts = E.numOr("ts", 0);
    S.Dur = E.numOr("dur", 0);
    (IsWall ? Wall : Cycles).push_back(std::move(S));
  }

  summarizeDomain("host wall-clock", "us", Wall, WallInstants, TopN);
  summarizeDomain("simulated CM/2", "cycles", Cycles, CycleInstants, TopN);
  return 0;
}
