//===- tools/f90yc.cpp - the Fortran-90-Y command-line compiler -------------===//
//
// Part of the Fortran-90-Y reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// f90yc: compile a Fortran-90 source file through the prototype pipeline
/// and (by default) run it on the simulated CM/2.
///
///   f90yc [options] file.f90
///
///   -emit-nir        print the lowered NIR and stop
///   -emit-blocked    print the transformed (blocked) NIR and stop
///   -emit-peac       print the generated PEAC node code and stop
///   -emit-host       print the generated host (FE) code and stop
///   -profile=NAME    f90y (default) | cmf | naive
///   -pes=N           number of simulated PEs (default 2048)
///   -threads=N       host threads for the simulation sweep (default: all
///                    hardware threads; results are identical at any N)
///   -exec=KIND       PEAC executor: compiled (default; translate each
///                    routine once, cached) | interp (the reference
///                    interpreter); results are identical either way
///   -comm=MODE       overlap (default): schedule communication early,
///                    coalesce same-axis shifts, and hide exchanges under
///                    independent node computation (OverlappedCycles) |
///                    sync: the paper's strict phase-serial model.
///                    Program output is bit-identical in both modes
///   -fuse=MODE       on (default): cross-statement elementwise fusion —
///                    single-use array temporaries are folded into their
///                    consumer and their allocation deleted, so producer
///                    chains compile into one PEAC sweep | off: keep every
///                    temporary. Program output is bit-identical either way
///   -layout=MODE     infer (default for -profile=f90y): alignment/layout
///                    inference — fields connected by constant CSHIFTs are
///                    realigned by per-axis storage offsets so exchanges
///                    become local copies (or shrink to the residual
///                    distance) | canonical: every field in its canonical
///                    placement (cmf/naive profiles always compile
///                    canonical). Program output is bit-identical either way
///   -faults=SPEC     inject faults: kind:prob[,kind:prob...]; kinds are
///                    router-drop, grid-timeout, corrupt, pe-trap, fpu,
///                    oom, or all (e.g. -faults=all:0.01)
///   -fault-seed=N    seed of the deterministic fault schedule (default 0)
///   -max-steps=N     watchdog: abort after N executed host statements
///   -cm5             use the CM/5 machine description
///   -stats           print the cycle ledger (and any fault/recovery
///                    counters) after the run
///   -stats-json=F    write the run report (ledger breakdown, flops,
///                    GFLOPS, fault counters) to F as JSON
///   -trace=F         record a dual-clock trace (compiler phases on the
///                    host wall clock, execution on simulated cycles) and
///                    write Chrome trace-event JSON to F
///   -metrics=F       write the metrics registry (counters, gauges,
///                    histograms) to F as JSON
///   -checkpoint=F    snapshot the run state to F at outermost-loop step
///                    boundaries (atomically; previous generations rotate
///                    to F.1, F.2)
///   -checkpoint-every=N
///                    checkpoint every Nth step (default 1)
///   -restore=F       resume a previous run from checkpoint F; the
///                    restored run is bit-identical to one that never
///                    stopped
///   -crash-at-step=N crash-test hook: kill the process with exit code 3
///                    right after completing step N (after any checkpoint
///                    due at that boundary is on disk)
///
/// Exit codes: 0 success, 1 compile/runtime/IO error, 2 bad usage or a
/// -restore= checkpoint that cannot be loaded, 3 the deliberate
/// -crash-at-step kill.
///
//===----------------------------------------------------------------------===//

#include "driver/Driver.h"
#include "host/Printer.h"
#include "nir/Printer.h"
#include "observe/Metrics.h"
#include "observe/Trace.h"
#include "support/FileIO.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

using namespace f90y;
using namespace f90y::driver;

namespace {

void usage() {
  std::fprintf(
      stderr,
      "usage: f90yc [options] file.f90\n"
      "  -emit-nir | -emit-blocked | -emit-peac | -emit-host\n"
      "  -profile=f90y|cmf|naive   -pes=N   -threads=N   -cm5   -stats\n"
      "  -exec=compiled|interp   -comm=overlap|sync   -fuse=on|off\n"
      "  -layout=infer|canonical\n"
      "  -faults=kind:prob[,...]   -fault-seed=N   -max-steps=N\n"
      "  -stats-json=FILE   -trace=FILE   -metrics=FILE\n"
      "  -checkpoint=FILE   -checkpoint-every=N   -restore=FILE\n"
      "  -crash-at-step=N  (kills the process with exit code 3)\n");
}

/// Strict decimal parse of a flag value: the whole string must be a
/// number, and it must fit. atoi-style silent zeroes ("-pes=garbage")
/// hide typos behind a valid-looking configuration.
bool parseUint64(const std::string &Flag, const std::string &Text,
                 uint64_t &Out) {
  if (Text.empty() || Text[0] == '-' || Text[0] == '+') {
    std::fprintf(stderr, "f90yc: invalid value '%s' for %s=N\n",
                 Text.c_str(), Flag.c_str());
    return false;
  }
  errno = 0;
  char *End = nullptr;
  unsigned long long V = std::strtoull(Text.c_str(), &End, 10);
  if (End == Text.c_str() || *End != '\0' || errno == ERANGE) {
    std::fprintf(stderr, "f90yc: invalid value '%s' for %s=N\n",
                 Text.c_str(), Flag.c_str());
    return false;
  }
  Out = V;
  return true;
}

/// As parseUint64, additionally requiring the value to be a positive
/// 32-bit count (PEs and threads: 0 of either is not a machine).
bool parsePositiveCount(const std::string &Flag, const std::string &Text,
                        unsigned &Out) {
  uint64_t V = 0;
  if (!parseUint64(Flag, Text, V))
    return false;
  if (V == 0 || V > 0xffffffffull) {
    std::fprintf(stderr, "f90yc: %s must be a positive count, got '%s'\n",
                 Flag.c_str(), Text.c_str());
    return false;
  }
  Out = static_cast<unsigned>(V);
  return true;
}

} // namespace

int main(int argc, char **argv) {
  std::string Path;
  enum class Emit { Run, NIR, Blocked, Peac, Host } Mode = Emit::Run;
  Profile Prof = Profile::F90Y;
  bool Stats = false;
  std::string StatsJsonPath, TracePath, MetricsPath;
  cm2::CostModel Machine;
  ExecutionOptions ExecOpts;
  bool OverlapComm = true;
  bool Fuse = true;
  bool FuseExplicit = false; // -fuse= overrides the profile's default
  bool LayoutInfer = true;
  bool LayoutExplicit = false; // -layout= overrides the profile's default

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg == "-emit-nir")
      Mode = Emit::NIR;
    else if (Arg == "-emit-blocked")
      Mode = Emit::Blocked;
    else if (Arg == "-emit-peac")
      Mode = Emit::Peac;
    else if (Arg == "-emit-host")
      Mode = Emit::Host;
    else if (Arg == "-stats")
      Stats = true;
    else if (Arg == "-cm5")
      Machine = cm2::CostModel::cm5();
    else if (Arg.rfind("-pes=", 0) == 0) {
      if (!parsePositiveCount("-pes", Arg.substr(5), Machine.NumPEs))
        return 2;
    } else if (Arg.rfind("-threads=", 0) == 0) {
      if (!parsePositiveCount("-threads", Arg.substr(9), ExecOpts.Threads))
        return 2;
    } else if (Arg.rfind("--threads=", 0) == 0) {
      if (!parsePositiveCount("--threads", Arg.substr(10), ExecOpts.Threads))
        return 2;
    } else if (Arg.rfind("-exec=", 0) == 0) {
      std::string E = Arg.substr(6);
      if (E == "interp")
        ExecOpts.Engine = peac::EngineKind::Interp;
      else if (E == "compiled")
        ExecOpts.Engine = peac::EngineKind::Compiled;
      else {
        std::fprintf(stderr, "f90yc: unknown executor '%s' for -exec="
                             "compiled|interp\n",
                     E.c_str());
        return 2;
      }
    } else if (Arg.rfind("-comm=", 0) == 0) {
      std::string M = Arg.substr(6);
      if (M == "overlap")
        OverlapComm = true;
      else if (M == "sync")
        OverlapComm = false;
      else {
        std::fprintf(stderr, "f90yc: unknown mode '%s' for -comm="
                             "overlap|sync\n",
                     M.c_str());
        return 2;
      }
    } else if (Arg.rfind("-fuse=", 0) == 0) {
      std::string M = Arg.substr(6);
      FuseExplicit = true;
      if (M == "on")
        Fuse = true;
      else if (M == "off")
        Fuse = false;
      else {
        std::fprintf(stderr, "f90yc: unknown mode '%s' for -fuse="
                             "on|off\n",
                     M.c_str());
        return 2;
      }
    } else if (Arg.rfind("-layout=", 0) == 0) {
      std::string M = Arg.substr(8);
      LayoutExplicit = true;
      if (M == "infer")
        LayoutInfer = true;
      else if (M == "canonical")
        LayoutInfer = false;
      else {
        std::fprintf(stderr, "f90yc: unknown mode '%s' for -layout="
                             "infer|canonical\n",
                     M.c_str());
        return 2;
      }
    } else if (Arg.rfind("-faults=", 0) == 0) {
      std::string Error;
      if (!support::FaultSpec::parse(Arg.substr(8), ExecOpts.Faults,
                                     Error)) {
        std::fprintf(stderr, "f90yc: -faults: %s\n", Error.c_str());
        return 2;
      }
    } else if (Arg.rfind("-fault-seed=", 0) == 0) {
      if (!parseUint64("-fault-seed", Arg.substr(12), ExecOpts.FaultSeed))
        return 2;
    } else if (Arg.rfind("-max-steps=", 0) == 0) {
      if (!parseUint64("-max-steps", Arg.substr(11), ExecOpts.MaxSteps))
        return 2;
    } else if (Arg.rfind("-stats-json=", 0) == 0) {
      StatsJsonPath = Arg.substr(12);
      if (StatsJsonPath.empty()) {
        std::fprintf(stderr, "f90yc: -stats-json needs a file name\n");
        return 2;
      }
    } else if (Arg.rfind("-trace=", 0) == 0) {
      TracePath = Arg.substr(7);
      if (TracePath.empty()) {
        std::fprintf(stderr, "f90yc: -trace needs a file name\n");
        return 2;
      }
    } else if (Arg.rfind("-metrics=", 0) == 0) {
      MetricsPath = Arg.substr(9);
      if (MetricsPath.empty()) {
        std::fprintf(stderr, "f90yc: -metrics needs a file name\n");
        return 2;
      }
    } else if (Arg.rfind("-checkpoint=", 0) == 0) {
      ExecOpts.Checkpoint.Path = Arg.substr(12);
      if (ExecOpts.Checkpoint.Path.empty()) {
        std::fprintf(stderr, "f90yc: -checkpoint needs a file name\n");
        return 2;
      }
    } else if (Arg.rfind("-checkpoint-every=", 0) == 0) {
      uint64_t Every = 0;
      if (!parseUint64("-checkpoint-every", Arg.substr(18), Every))
        return 2;
      if (Every == 0) {
        std::fprintf(stderr,
                     "f90yc: -checkpoint-every must be a positive step "
                     "count, got '%s'\n",
                     Arg.substr(18).c_str());
        return 2;
      }
      ExecOpts.Checkpoint.Every = Every;
    } else if (Arg.rfind("-restore=", 0) == 0) {
      ExecOpts.Checkpoint.RestorePath = Arg.substr(9);
      if (ExecOpts.Checkpoint.RestorePath.empty()) {
        std::fprintf(stderr, "f90yc: -restore needs a file name\n");
        return 2;
      }
    } else if (Arg.rfind("-crash-at-step=", 0) == 0) {
      if (!parseUint64("-crash-at-step", Arg.substr(15),
                       ExecOpts.Checkpoint.CrashAtStep))
        return 2;
    } else if (Arg.rfind("-profile=", 0) == 0) {
      std::string P = Arg.substr(9);
      if (P == "f90y")
        Prof = Profile::F90Y;
      else if (P == "cmf")
        Prof = Profile::CMFStyle;
      else if (P == "naive")
        Prof = Profile::Naive;
      else {
        std::fprintf(stderr, "f90yc: unknown profile '%s'\n", P.c_str());
        return 2;
      }
    } else if (!Arg.empty() && Arg[0] == '-') {
      std::fprintf(stderr, "f90yc: unknown option '%s'\n", Arg.c_str());
      usage();
      return 2;
    } else if (Path.empty()) {
      Path = Arg;
    } else {
      std::fprintf(stderr, "f90yc: multiple input files\n");
      return 2;
    }
  }
  if (Path.empty()) {
    usage();
    return 2;
  }

  std::ifstream In(Path);
  if (!In) {
    std::fprintf(stderr, "f90yc: cannot open '%s'\n", Path.c_str());
    return 1;
  }
  std::ostringstream Buf;
  Buf << In.rdbuf();

  observe::TraceRecorder Trace;
  observe::MetricsRegistry Metrics;
  observe::TraceRecorder *TraceP = TracePath.empty() ? nullptr : &Trace;
  observe::MetricsRegistry *MetricsP =
      MetricsPath.empty() ? nullptr : &Metrics;
  // Writes the requested observability files; returns false (with a
  // diagnostic) if any cannot be written. Called on every exit path past
  // compilation so a failed run still leaves its trace behind. All
  // durable artifacts go through atomicWriteFile so a kill mid-write
  // (e.g. -crash-at-step) never leaves a truncated JSON file behind.
  auto WriteObservability = [&]() {
    bool Ok = true;
    std::string Error;
    if (TraceP && !support::atomicWriteFile(TracePath, Trace.exportJson(),
                                            &Error)) {
      std::fprintf(stderr, "f90yc: cannot write trace to '%s': %s\n",
                   TracePath.c_str(), Error.c_str());
      Ok = false;
    }
    if (MetricsP && !support::atomicWriteFile(MetricsPath,
                                              Metrics.exportJson(),
                                              &Error)) {
      std::fprintf(stderr, "f90yc: cannot write metrics to '%s': %s\n",
                   MetricsPath.c_str(), Error.c_str());
      Ok = false;
    }
    return Ok;
  };

  CompileOptions COpts = CompileOptions::forProfile(Prof, Machine);
  COpts.Transforms.CommSchedule = OverlapComm;
  if (FuseExplicit)
    COpts.Transforms.Fusion = Fuse;
  if (LayoutExplicit)
    COpts.Transforms.Layout = LayoutInfer;
  ExecOpts.OverlapComm = OverlapComm;
  Compilation C(std::move(COpts));
  C.setObservability(TraceP, MetricsP);
  if (!C.compile(Buf.str())) {
    std::fprintf(stderr, "%s", C.diags().str().c_str());
    WriteObservability();
    return 1;
  }
  if (!C.diags().diagnostics().empty())
    std::fprintf(stderr, "%s", C.diags().str().c_str()); // Warnings.

  switch (Mode) {
  case Emit::NIR:
    std::printf("%s", nir::printImp(C.artifacts().RawNIR).c_str());
    return WriteObservability() ? 0 : 1;
  case Emit::Blocked:
    std::printf("%s", nir::printImp(C.artifacts().OptimizedNIR).c_str());
    return WriteObservability() ? 0 : 1;
  case Emit::Peac:
    std::printf("%s", C.artifacts().Compiled.peacListing().c_str());
    return WriteObservability() ? 0 : 1;
  case Emit::Host:
    std::printf("%s",
                host::printHostProgram(C.artifacts().Compiled.Program)
                    .c_str());
    return WriteObservability() ? 0 : 1;
  case Emit::Run:
    break;
  }

  ExecOpts.Trace = TraceP;
  ExecOpts.Metrics = MetricsP;
  Execution Exec(Machine, ExecOpts);
  auto Report = Exec.run(C.artifacts().Compiled.Program);
  if (!Report) {
    std::fprintf(stderr, "f90yc: runtime error:\n%s",
                 Exec.diags().str().c_str());
    if (Stats && Exec.faultInjector())
      std::fprintf(stderr, "-- %s\n",
                   Exec.faultInjector()->counters().str().c_str());
    WriteObservability();
    // An unloadable -restore= checkpoint is a usage-level failure (the
    // named file is missing, corrupt past every retained generation, or
    // from a different program/fault configuration), not a simulated
    // runtime error.
    return Exec.restoreFailed() ? 2 : 1;
  }
  std::printf("%s", Report->Output.c_str());
  if (Stats) {
    std::fprintf(stderr,
                 "-- %u PEs @ %.1f MHz: %.3f ms simulated "
                 "(node %.0f, call %.0f, comm %.0f, host %.0f, "
                 "overlapped %.0f cycles), "
                 "%llu flops, %.3f GFLOPS\n",
                 Machine.NumPEs, Machine.ClockMHz, Report->seconds() * 1e3,
                 Report->Ledger.NodeCycles, Report->Ledger.CallCycles,
                 Report->Ledger.CommCycles, Report->Ledger.HostCycles,
                 Report->Ledger.OverlappedCycles,
                 static_cast<unsigned long long>(Report->Ledger.Flops),
                 Report->gflops());
    if (Exec.faultInjector())
      std::fprintf(stderr, "-- %s\n", Report->Faults.str().c_str());
  }
  if (!StatsJsonPath.empty()) {
    std::string Error;
    if (!support::atomicWriteFile(StatsJsonPath, Report->json(), &Error)) {
      std::fprintf(stderr, "f90yc: cannot write run report to '%s': %s\n",
                   StatsJsonPath.c_str(), Error.c_str());
      return 1;
    }
  }
  return WriteObservability() ? 0 : 1;
}
